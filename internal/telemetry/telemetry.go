// Package telemetry is the observability substrate for the OOElala
// pipeline: a metrics registry (counters, gauges, duration histograms),
// phase spans (the -time-passes analog), and a structured
// optimization-remark stream (the -Rpass analog) that carries unseq-aa
// attribution so the paper's causal chain — extra NoAlias answers →
// extra transforms → speedup — is observable per transform.
//
// The zero value of the system is "off": a nil *Session is a valid
// no-op sink, and every method on it is allocation-free, so the
// compiler hot path can be instrumented unconditionally.
package telemetry

import (
	"sync"
	"time"
)

// Config selects which telemetry streams a Session collects. Each
// stream is independent so the CLIs can map -stats, -time-passes and
// -remarks onto exactly one of them.
type Config struct {
	// Metrics enables the counter/gauge registry (-stats).
	Metrics bool
	// Timing enables phase/pass spans (-time-passes).
	Timing bool
	// Remarks enables the optimization-remark stream (-remarks).
	Remarks bool
	// Trace enables hierarchical trace events: every span additionally
	// records a Chrome trace_event "complete" entry with begin timestamp
	// and duration on the session's lane (-trace).
	Trace bool
	// Audit enables the alias-query audit log: a bounded ring buffer of
	// AliasQuery records the aa.Manager fills per chain query (-aa-audit).
	Audit bool
	// AuditCap bounds the audit ring buffer (0 = DefaultAuditCap).
	// Overflow drops the oldest entries; the total asked is still counted.
	AuditCap int
	// Flight forces a live session even when no other stream is on, for
	// callers that only want the always-on flight recorder (every live
	// session carries one regardless of this field; see FlightRecorder).
	Flight bool
	// FlightCap bounds each lane's flight ring (0 = DefaultFlightCap).
	FlightCap int
}

// DefaultAuditCap is the audit ring capacity when Config.AuditCap is 0.
const DefaultAuditCap = 8192

// Enabled reports whether any stream is on.
func (c Config) Enabled() bool {
	return c.Metrics || c.Timing || c.Remarks || c.Trace || c.Audit || c.Flight
}

// Remark is one structured optimization remark: a single transform a
// pass performed, with enough context to attribute it. When the
// transform was only legal because unseq-aa answered NoAlias on a
// query every other analysis left as MayAlias, EnabledByUnseqAA is set
// and PredicateMeta carries the provenance id of the π predicate
// (the mustnotalias intrinsic's Meta) that supplied the fact.
type Remark struct {
	Pass             string `json:"pass"`
	Function         string `json:"function"`
	Loc              string `json:"loc,omitempty"` // block or loop header
	Kind             string `json:"kind"`
	EnabledByUnseqAA bool   `json:"enabledByUnseqAA"`
	PredicateMeta    int    `json:"predicateMeta"`
}

// Duration histogram buckets (upper bounds); the last bucket is +Inf.
var bucketBounds = [...]time.Duration{
	10 * time.Microsecond,
	100 * time.Microsecond,
	time.Millisecond,
	10 * time.Millisecond,
	100 * time.Millisecond,
	time.Second,
	10 * time.Second,
}

// NumBuckets is the histogram bucket count (bounds + overflow).
const NumBuckets = len(bucketBounds) + 1

func bucketFor(d time.Duration) int {
	for i, b := range bucketBounds {
		if d <= b {
			return i
		}
	}
	return NumBuckets - 1
}

// durStat accumulates one span name's timing.
type durStat struct {
	count   int64
	total   time.Duration
	max     time.Duration
	buckets [NumBuckets]int64
}

// Session is a telemetry sink. A nil session is the no-op default; all
// methods are safe (and allocation-free) on nil.
type Session struct {
	cfg Config

	// traceRef is the time-zero every trace event timestamp is relative
	// to; forks inherit it from the root so lanes share one timeline.
	traceRef time.Time
	// lane is the Chrome trace tid events on this session carry: 0 is
	// the root (main) lane, forked workers get 1..jobs (ForkLane).
	lane int

	mu           sync.Mutex
	counters     map[string]int64
	counterOrder []string
	gauges       map[string]float64
	gaugeOrder   []string
	durs         map[string]*durStat
	durOrder     []string
	remarks      []Remark
	events       []TraceEvent

	// Alias-query audit ring buffer: when full, the oldest entry is
	// overwritten (auditHead marks it) and auditTotal keeps the true
	// number of queries recorded.
	audit      []AliasQuery
	auditHead  int
	auditTotal int64

	// flight is the always-on crash flight recorder, shared (same
	// pointer) by every fork so worker events land live. See flight.go.
	flight *FlightRecorder
}

// New builds a session collecting the configured streams. If nothing
// is enabled it returns nil — the canonical no-op sink.
func New(cfg Config) *Session {
	if !cfg.Enabled() {
		return nil
	}
	if cfg.Audit && cfg.AuditCap <= 0 {
		cfg.AuditCap = DefaultAuditCap
	}
	s := newSession(cfg)
	s.flight = newFlightRecorder(cfg.FlightCap)
	if cfg.Trace {
		s.traceRef = time.Now()
	}
	return s
}

// newSession builds the bare per-fork collection state. Forks go
// through here rather than New so they never allocate a second flight
// recorder — they share the root's.
func newSession(cfg Config) *Session {
	return &Session{
		cfg:      cfg,
		counters: make(map[string]int64),
		gauges:   make(map[string]float64),
		durs:     make(map[string]*durStat),
	}
}

// noopStop is the pre-allocated stop function returned by disabled
// spans, keeping Span allocation-free on the no-op path.
var noopStop = func() {}

// MetricsEnabled reports whether the counter registry is collecting.
func (s *Session) MetricsEnabled() bool { return s != nil && s.cfg.Metrics }

// TimingEnabled reports whether spans are collecting.
func (s *Session) TimingEnabled() bool { return s != nil && s.cfg.Timing }

// RemarksEnabled reports whether the remark stream is collecting.
func (s *Session) RemarksEnabled() bool { return s != nil && s.cfg.Remarks }

// TraceEnabled reports whether the trace-event stream is collecting.
func (s *Session) TraceEnabled() bool { return s != nil && s.cfg.Trace }

// Count adds delta to the named counter.
func (s *Session) Count(name string, delta int64) {
	if s == nil || !s.cfg.Metrics {
		return
	}
	s.mu.Lock()
	if _, ok := s.counters[name]; !ok {
		s.counterOrder = append(s.counterOrder, name)
	}
	s.counters[name] += delta
	s.mu.Unlock()
}

// SetGauge sets the named gauge.
func (s *Session) SetGauge(name string, v float64) {
	if s == nil || !s.cfg.Metrics {
		return
	}
	s.mu.Lock()
	if _, ok := s.gauges[name]; !ok {
		s.gaugeOrder = append(s.gaugeOrder, name)
	}
	s.gauges[name] = v
	s.mu.Unlock()
}

// AddGauge accumulates into the named gauge (e.g. simulated cycles
// across multiple runs).
func (s *Session) AddGauge(name string, v float64) {
	if s == nil || !s.cfg.Metrics {
		return
	}
	s.mu.Lock()
	if _, ok := s.gauges[name]; !ok {
		s.gaugeOrder = append(s.gaugeOrder, name)
	}
	s.gauges[name] += v
	s.mu.Unlock()
}

// Span starts a timed phase and returns its stop function. Durations
// for the same name accumulate (count/total/max + histogram), so
// repeated pass invocations fold into one line of -time-passes output.
// With tracing enabled the stop additionally records a trace event, so
// nested Span calls on one goroutine render as a flame in Perfetto.
func (s *Session) Span(name string) func() {
	if s == nil {
		return noopStop
	}
	// Top-level phases feed the flight recorder regardless of which
	// streams are on — they are the coarse "where were we" markers a
	// crash dump needs. Pass-level events are recorded (with function
	// attribution) by PassInstrumentation, not here.
	if len(name) > 6 && name[:6] == "phase/" {
		s.flight.Record(s.lane, "phase", name, "")
	}
	if !s.cfg.Timing && !s.cfg.Trace {
		return noopStop
	}
	start := time.Now()
	return func() {
		d := time.Since(start)
		s.mu.Lock()
		if s.cfg.Timing {
			st := s.durs[name]
			if st == nil {
				st = &durStat{}
				s.durs[name] = st
				s.durOrder = append(s.durOrder, name)
			}
			st.count++
			st.total += d
			if d > st.max {
				st.max = d
			}
			st.buckets[bucketFor(d)]++
		}
		if s.cfg.Trace {
			s.events = append(s.events, s.traceEvent(name, start, d))
		}
		s.mu.Unlock()
	}
}

// TraceSpan is Span restricted to the trace stream: it never creates a
// -time-passes duration accumulator, so high-cardinality hierarchy-only
// spans (one per function under -j) can be traced without polluting the
// aggregate phase report.
func (s *Session) TraceSpan(name string) func() {
	if s == nil || !s.cfg.Trace {
		return noopStop
	}
	start := time.Now()
	return func() {
		d := time.Since(start)
		s.mu.Lock()
		s.events = append(s.events, s.traceEvent(name, start, d))
		s.mu.Unlock()
	}
}

// RecordDuration folds an externally-measured duration into the named
// span accumulator.
func (s *Session) RecordDuration(name string, d time.Duration) {
	if s == nil || !s.cfg.Timing {
		return
	}
	s.mu.Lock()
	st := s.durs[name]
	if st == nil {
		st = &durStat{}
		s.durs[name] = st
		s.durOrder = append(s.durOrder, name)
	}
	st.count++
	st.total += d
	if d > st.max {
		st.max = d
	}
	st.buckets[bucketFor(d)]++
	s.mu.Unlock()
}

// Remark appends r to the remark stream.
func (s *Session) Remark(r Remark) {
	if s == nil || !s.cfg.Remarks {
		return
	}
	s.mu.Lock()
	s.remarks = append(s.remarks, r)
	s.mu.Unlock()
}

// Fork returns a fresh session with the same configuration. Workers of
// a parallel phase each collect into their own fork, and the fan-in
// merges the forks back in a deterministic order (Merge), so the
// combined stream is byte-stable regardless of goroutine scheduling.
// Forking a nil session returns nil (the no-op default propagates).
// The fork inherits the parent's trace lane and time reference.
func (s *Session) Fork() *Session {
	if s == nil {
		return nil
	}
	return s.ForkLane(s.lane)
}

// ForkLane is Fork with an explicit trace lane: events the child records
// carry tid = lane, which is how a worker pool's scheduling becomes
// visible as parallel tracks in Perfetto. Lane 0 is the root session's
// (main) lane; worker pools use 1..jobs.
func (s *Session) ForkLane(lane int) *Session {
	if s == nil {
		return nil
	}
	child := newSession(s.cfg)
	child.traceRef = s.traceRef
	child.lane = lane
	child.flight = s.flight
	return child
}

// Merge folds everything child collected into s: counters and gauges
// add, duration accumulators combine (count/total sum, max of max,
// buckets add), and remarks append. Names register in child's
// first-seen order, so merging forks in a fixed order yields a
// deterministic combined registry. Safe when s or child is nil.
func (s *Session) Merge(child *Session) {
	if s == nil || child == nil {
		return
	}
	// Lock ordering: parent before child. Forks are only ever merged
	// into the session they were forked from, so the order is acyclic.
	s.mu.Lock()
	defer s.mu.Unlock()
	child.mu.Lock()
	defer child.mu.Unlock()
	s.mergeMetricsLocked(child)
	s.remarks = append(s.remarks, child.remarks...)
	s.events = append(s.events, child.events...)
	// Replay the child's audit ring through the parent's (preserving its
	// internal order); entries the child already dropped stay counted.
	dropped := child.auditTotal - int64(len(child.audit))
	s.auditTotal += dropped
	for _, q := range child.auditInOrder() {
		s.recordAliasQueryLocked(q)
	}
}

// MergeMetrics folds only the bounded aggregate streams of child into
// s — counters, gauges, and duration accumulators — leaving remarks,
// trace events, and the audit ring behind. It is the fan-in for
// long-running servers: a per-request session carries the full streams
// so its snapshot can be serialized into artifacts, while the serving
// session absorbs just the aggregates, keeping its memory bounded no
// matter how many requests it outlives. The child need not be a fork
// of s. Safe when s or child is nil.
func (s *Session) MergeMetrics(child *Session) {
	if s == nil || child == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	child.mu.Lock()
	defer child.mu.Unlock()
	s.mergeMetricsLocked(child)
}

// mergeMetricsLocked merges counters, gauges and duration accumulators
// with both mutexes held.
func (s *Session) mergeMetricsLocked(child *Session) {
	for _, n := range child.counterOrder {
		if _, ok := s.counters[n]; !ok {
			s.counterOrder = append(s.counterOrder, n)
		}
		s.counters[n] += child.counters[n]
	}
	for _, n := range child.gaugeOrder {
		if _, ok := s.gauges[n]; !ok {
			s.gaugeOrder = append(s.gaugeOrder, n)
		}
		s.gauges[n] += child.gauges[n]
	}
	for _, n := range child.durOrder {
		cd := child.durs[n]
		st := s.durs[n]
		if st == nil {
			st = &durStat{}
			s.durs[n] = st
			s.durOrder = append(s.durOrder, n)
		}
		st.count += cd.count
		st.total += cd.total
		if cd.max > st.max {
			st.max = cd.max
		}
		for i := range st.buckets {
			st.buckets[i] += cd.buckets[i]
		}
	}
}

// ---------- snapshots ----------

// Counter is one named counter value in a snapshot.
type Counter struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// Gauge is one named gauge value in a snapshot.
type Gauge struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// DurationStat is one span accumulator in a snapshot.
type DurationStat struct {
	Name    string            `json:"name"`
	Count   int64             `json:"count"`
	TotalNS int64             `json:"total_ns"`
	MaxNS   int64             `json:"max_ns"`
	Buckets [NumBuckets]int64 `json:"buckets"`
}

// Total returns the accumulated wall time.
func (d DurationStat) Total() time.Duration { return time.Duration(d.TotalNS) }

// Snapshot is a point-in-time copy of everything a session collected,
// in first-seen order (deterministic output). Trace events and the
// alias-query audit log only appear when their streams were enabled.
type Snapshot struct {
	Counters  []Counter      `json:"counters"`
	Gauges    []Gauge        `json:"gauges"`
	Durations []DurationStat `json:"phases"`
	Remarks   []Remark       `json:"remarks"`
	Events    []TraceEvent   `json:"traceEvents,omitempty"`
	// AliasQueries is the audit ring content, oldest first.
	AliasQueries []AliasQuery `json:"aliasQueries,omitempty"`
	// AliasQueriesTotal counts every query recorded, including ones the
	// bounded ring has since dropped.
	AliasQueriesTotal int64 `json:"aliasQueriesTotal,omitempty"`
}

// AliasQueriesDropped returns how many audit entries overflowed the ring.
func (s *Snapshot) AliasQueriesDropped() int64 {
	return s.AliasQueriesTotal - int64(len(s.AliasQueries))
}

// Snapshot copies the session's current state. Safe on nil (returns an
// empty snapshot).
func (s *Session) Snapshot() *Snapshot {
	snap := &Snapshot{}
	if s == nil {
		return snap
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, n := range s.counterOrder {
		snap.Counters = append(snap.Counters, Counter{Name: n, Value: s.counters[n]})
	}
	for _, n := range s.gaugeOrder {
		snap.Gauges = append(snap.Gauges, Gauge{Name: n, Value: s.gauges[n]})
	}
	for _, n := range s.durOrder {
		st := s.durs[n]
		snap.Durations = append(snap.Durations, DurationStat{
			Name: n, Count: st.count, TotalNS: int64(st.total),
			MaxNS: int64(st.max), Buckets: st.buckets,
		})
	}
	snap.Remarks = append(snap.Remarks, s.remarks...)
	snap.Events = append(snap.Events, s.events...)
	snap.AliasQueries = append(snap.AliasQueries, s.auditInOrder()...)
	snap.AliasQueriesTotal = s.auditTotal
	return snap
}

// Diff returns the delta snapshot s − prev: counters, gauges and
// durations subtract by name (entries absent from prev pass through),
// and remarks are the suffix appended since prev was taken. Use it to
// attribute metrics to one stage of a longer run.
func (s *Snapshot) Diff(prev *Snapshot) *Snapshot {
	if prev == nil {
		return s
	}
	out := &Snapshot{}
	pc := map[string]int64{}
	for _, c := range prev.Counters {
		pc[c.Name] = c.Value
	}
	for _, c := range s.Counters {
		if v := c.Value - pc[c.Name]; v != 0 {
			out.Counters = append(out.Counters, Counter{Name: c.Name, Value: v})
		}
	}
	pg := map[string]float64{}
	for _, g := range prev.Gauges {
		pg[g.Name] = g.Value
	}
	for _, g := range s.Gauges {
		if v := g.Value - pg[g.Name]; v != 0 {
			out.Gauges = append(out.Gauges, Gauge{Name: g.Name, Value: v})
		}
	}
	pd := map[string]DurationStat{}
	for _, d := range prev.Durations {
		pd[d.Name] = d
	}
	for _, d := range s.Durations {
		p := pd[d.Name]
		if d.Count == p.Count && d.TotalNS == p.TotalNS {
			continue
		}
		nd := DurationStat{
			Name: d.Name, Count: d.Count - p.Count,
			TotalNS: d.TotalNS - p.TotalNS, MaxNS: d.MaxNS,
		}
		for i := range nd.Buckets {
			nd.Buckets[i] = d.Buckets[i] - p.Buckets[i]
		}
		out.Durations = append(out.Durations, nd)
	}
	if len(s.Remarks) > len(prev.Remarks) {
		out.Remarks = append(out.Remarks, s.Remarks[len(prev.Remarks):]...)
	}
	if len(s.Events) > len(prev.Events) {
		out.Events = append(out.Events, s.Events[len(prev.Events):]...)
	}
	// Audit entries appended since prev (exact while the ring has not
	// wrapped; after a wrap the suffix is best-effort but never invents
	// entries). The total delta is always exact.
	if len(s.AliasQueries) > len(prev.AliasQueries) {
		out.AliasQueries = append(out.AliasQueries, s.AliasQueries[len(prev.AliasQueries):]...)
	}
	out.AliasQueriesTotal = s.AliasQueriesTotal - prev.AliasQueriesTotal
	return out
}
