package passes

import (
	"repro/internal/ir"
)

// canonLoop is the canonical counted-loop shape produced by our
// structured lowering after LICM/CSE:
//
//	header: iv = load A; c = cmp lt iv, limit; condbr c, body, exit
//	body:   ... ; iv' = load A; iv2 = add iv', 1; store A, iv2; br header
//
// with a single in-loop body block and an invariant limit.
type canonLoop struct {
	l        *ir.Loop
	header   *ir.Block
	body     *ir.Block
	exit     *ir.Block
	ivAlloca *ir.Instr
	ivLoadH  *ir.Instr
	cmp      *ir.Instr
	limit    ir.Value
	// limitIncl marks a `<=` loop: the effective exclusive bound is
	// limit+1.
	limitIncl bool
	incStore  *ir.Instr
	incAdd    *ir.Instr
	ivCls     ir.Class
}

// recognize matches l against the canonical shape.
func recognize(f *ir.Func, l *ir.Loop) (*canonLoop, bool) {
	if l.Preheader == nil || len(l.Blocks) != 2 || len(l.Latches) != 1 {
		return nil, false
	}
	h := l.Header
	body := l.Latches[0]
	if body == h || !l.Blocks[body] {
		return nil, false
	}
	// Header: load, cmp, condbr (allow leading pure instrs).
	n := len(h.Instrs)
	if n < 3 {
		return nil, false
	}
	term := h.Instrs[n-1]
	if term.Op != ir.OpCondBr {
		return nil, false
	}
	cmp, ok := term.Args[0].(*ir.Instr)
	if !ok || cmp.Op != ir.OpCmp || (cmp.Pred != ir.Lt && cmp.Pred != ir.Le) {
		return nil, false
	}
	ivLoad, ok := cmp.Args[0].(*ir.Instr)
	if !ok || ivLoad.Op != ir.OpLoad || ivLoad.Block() != h {
		return nil, false
	}
	ivAlloca, ok := ivLoad.Args[0].(*ir.Instr)
	if !ok || ivAlloca.Op != ir.OpAlloca || ivAlloca.AllocSz > 8 {
		return nil, false
	}
	limit := cmp.Args[1]
	if definedInLoop(l, limit) {
		return nil, false
	}
	if term.Then != body || l.Blocks[term.Else] {
		return nil, false
	}
	// All other header instructions must be speculatable or the iv load.
	for _, in := range h.Instrs[:n-1] {
		if in == ivLoad || in == cmp {
			continue
		}
		if !isPureValueOp(in) && in.Op != ir.OpMustNotAlias {
			return nil, false
		}
	}
	// Body: ends br header; exactly one store to ivAlloca, storing
	// add(load ivAlloca, 1).
	bt := body.Terminator()
	if bt == nil || bt.Op != ir.OpBr || bt.Target != h {
		return nil, false
	}
	var incStore, incAdd *ir.Instr
	for _, in := range body.Instrs {
		if in.Op == ir.OpStore && in.Args[0] == ivAlloca {
			if incStore != nil {
				return nil, false
			}
			incStore = in
		}
	}
	if incStore == nil {
		return nil, false
	}
	add, ok := incStore.Args[1].(*ir.Instr)
	if !ok || add.Op != ir.OpAdd {
		return nil, false
	}
	one, ok := add.Args[1].(*ir.Const)
	if !ok || one.Cls.IsFloat() || one.I != 1 {
		return nil, false
	}
	ld, ok := add.Args[0].(*ir.Instr)
	if !ok || ld.Op != ir.OpLoad || ld.Args[0] != ivAlloca {
		return nil, false
	}
	incAdd = add
	return &canonLoop{
		l: l, header: h, body: body, exit: term.Else,
		ivAlloca: ivAlloca, ivLoadH: ivLoad, cmp: cmp, limit: limit,
		limitIncl: cmp.Pred == ir.Le,
		incStore:  incStore, incAdd: incAdd, ivCls: ivLoad.Cls,
	}, true
}

// cloneInto clones body instructions (excluding the terminator) into
// dst, remapping intra-body values. mustnotalias intrinsics are cloned
// too — this is why the paper's "# final preds" can exceed the initial
// count after unrolling/inlining.
func cloneInto(dst *ir.Block, body *ir.Block, remap map[ir.Value]ir.Value) {
	for _, in := range body.Instrs {
		if in.IsTerminator() {
			continue
		}
		cl := &ir.Instr{
			Op: in.Op, Cls: in.Cls, Name: in.Name, AllocSz: in.AllocSz,
			Scale: in.Scale, Off: in.Off, Pred: in.Pred, Callee: in.Callee,
			Target: in.Target, Then: in.Then, Else: in.Else, Width: in.Width,
			VecOp: in.VecOp, Unsigned: in.Unsigned, Volatile: in.Volatile,
			Meta: in.Meta, Span: in.Span,
		}
		cl.Args = make([]ir.Value, len(in.Args))
		for i, a := range in.Args {
			if r, ok := remap[a]; ok {
				cl.Args[i] = r
			} else {
				cl.Args[i] = a
			}
		}
		dst.Append(cl)
		remap[in] = cl
	}
}

// unrollLoops unrolls canonical innermost loops by the given factor,
// keeping the original loop as the remainder. The mustnotalias
// intrinsics of the body are re-cloned per copy (this is why the paper's
// "# final preds" can exceed "# initial preds").
func unrollLoops(f *ir.Func, am *AnalysisManager, factor int) int {
	if factor < 2 {
		return 0
	}
	tel := am.Telemetry()
	loops := am.Loops()
	unrolled := 0
	for _, l := range loops {
		if !l.IsInnermost(loops) {
			continue
		}
		cl, ok := recognize(f, l)
		if !ok || loopAlreadyTransformed(cl) {
			continue
		}
		// Skip already-vectorized or huge bodies.
		if len(cl.body.Instrs) > 40 || hasVectorOps(cl.body) {
			continue
		}
		buildUnrolledLoop(f, cl, factor)
		unrolled++
		emitRemark(tel, nil, "unroll", "LoopUnrolled", f.Name, cl.header.Name)
	}
	return unrolled
}

// loopAlreadyTransformed recognizes loops that are themselves the product
// of unrolling/vectorization, or the scalar remainders those transforms
// leave behind; transforming them again would compound indefinitely
// across pipeline iterations.
func loopAlreadyTransformed(cl *canonLoop) bool {
	names := []string{cl.header.Name}
	if cl.l.Preheader != nil {
		names = append(names, cl.l.Preheader.Name)
	}
	for _, n := range names {
		if hasPrefix(n, "unroll.") || hasPrefix(n, "vec.") {
			return true
		}
	}
	return false
}

func hasPrefix(s, p string) bool { return len(s) >= len(p) && s[:len(p)] == p }

func hasVectorOps(b *ir.Block) bool {
	for _, in := range b.Instrs {
		switch in.Op {
		case ir.OpVecLoad, ir.OpVecStore, ir.OpVecBin, ir.OpVecSplat,
			ir.OpVecReduce, ir.OpVecSelect, ir.OpVecCall:
			return true
		}
	}
	return false
}

// emitBlockCountSplit inserts, before pre's terminator, the computation
//
//	main = iv0 + ((limit - iv0) / factor) * factor
//
// clamped to iv0 when negative, and returns (iv0, mainLimit).
func emitBlockCountSplit(pre *ir.Block, cl *canonLoop, factor int) (ir.Value, ir.Value) {
	cls := cl.ivCls
	csp := cl.cmp.Span // trip-count math derives from the loop condition
	iv0 := &ir.Instr{Op: ir.OpLoad, Cls: cls, Args: []ir.Value{cl.ivAlloca}, Span: csp}
	insertBeforeTerm(pre, iv0)
	limit := cl.limit
	if cl.limitIncl {
		// `iv <= limit` iterates up to the exclusive bound limit+1.
		incl := &ir.Instr{Op: ir.OpAdd, Cls: cls, Args: []ir.Value{limit, ir.ConstInt(cls, 1)}, Span: csp}
		insertBeforeTerm(pre, incl)
		limit = incl
	}
	span := &ir.Instr{Op: ir.OpSub, Cls: cls, Args: []ir.Value{limit, iv0}, Span: csp}
	insertBeforeTerm(pre, span)
	q := &ir.Instr{Op: ir.OpDiv, Cls: cls, Args: []ir.Value{span, ir.ConstInt(cls, int64(factor))}, Span: csp}
	insertBeforeTerm(pre, q)
	mul := &ir.Instr{Op: ir.OpMul, Cls: cls, Args: []ir.Value{q, ir.ConstInt(cls, int64(factor))}, Span: csp}
	insertBeforeTerm(pre, mul)
	main := &ir.Instr{Op: ir.OpAdd, Cls: cls, Args: []ir.Value{iv0, mul}, Span: csp}
	insertBeforeTerm(pre, main)
	// Negative span guard: main = select(span < 0, iv0, main).
	neg := &ir.Instr{Op: ir.OpCmp, Cls: ir.I32, Pred: ir.Lt, Args: []ir.Value{span, ir.ConstInt(cls, 0)}, Span: csp}
	insertBeforeTerm(pre, neg)
	clamped := &ir.Instr{Op: ir.OpSelect, Cls: cls, Args: []ir.Value{neg, iv0, main}, Span: csp}
	insertBeforeTerm(pre, clamped)
	return iv0, clamped
}

// buildUnrolledLoop splices an unrolled main loop before the original
// (which becomes the remainder loop).
func buildUnrolledLoop(f *ir.Func, cl *canonLoop, factor int) {
	pre := cl.l.Preheader
	_, mainLimit := emitBlockCountSplit(pre, cl, factor)

	uheader := f.NewBlock("unroll.header")
	ubody := f.NewBlock("unroll.body")

	// Retarget preheader to the unrolled header.
	retarget(pre.Terminator(), cl.header, uheader)

	ivL := uheader.Append(&ir.Instr{Op: ir.OpLoad, Cls: cl.ivCls, Args: []ir.Value{cl.ivAlloca}, Span: cl.ivLoadH.Span})
	c := uheader.Append(&ir.Instr{Op: ir.OpCmp, Cls: ir.I32, Pred: ir.Lt, Unsigned: cl.cmp.Unsigned,
		Args: []ir.Value{ivL, mainLimit}, Span: cl.cmp.Span})
	uheader.Append(&ir.Instr{Op: ir.OpCondBr, Cls: ir.Void, Args: []ir.Value{c},
		Then: ubody, Else: cl.header, Span: cl.cmp.Span})

	for k := 0; k < factor; k++ {
		remap := map[ir.Value]ir.Value{}
		cloneInto(ubody, cl.body, remap)
	}
	ubody.Append(&ir.Instr{Op: ir.OpBr, Cls: ir.Void, Target: uheader, Span: cl.cmp.Span})
}

func retarget(term *ir.Instr, from, to *ir.Block) {
	if term == nil {
		return
	}
	if term.Target == from {
		term.Target = to
	}
	if term.Then == from {
		term.Then = to
	}
	if term.Else == from {
		term.Else = to
	}
}
