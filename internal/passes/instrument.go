package passes

import (
	"fmt"
	"io"

	"repro/internal/ir"
	"repro/internal/telemetry"
)

// PassInstrumentation brackets every pass invocation with the cross-
// cutting concerns the pipeline used to thread by hand: a telemetry
// span ("pass/<name>"), audit attribution (aa.Manager.SetPass, so every
// alias query issued while the pass runs is tagged with its name), the
// preserved-analyses invalidation, and the -verify-each / -print-changed
// debug modes.
type PassInstrumentation struct {
	// Tel receives the per-pass spans; nil is the no-op session.
	Tel *telemetry.Session
	// VerifyEach runs the IR verifier after every pass and fails the
	// pipeline at the first broken invariant.
	VerifyEach bool
	// PrintChanged, when non-nil, receives the function's IR after every
	// pass that changed it.
	PrintChanged io.Writer

	// active is the pass currently executing under this instrumentation
	// ("" between passes) — the crash-recovery path in runFunc reads it
	// to attribute a recovered panic.
	active string
}

// instrumentationFor builds the hook from the pipeline options.
func instrumentationFor(opts *Options) *PassInstrumentation {
	return &PassInstrumentation{
		Tel:          opts.Telemetry,
		VerifyEach:   opts.VerifyEach,
		PrintChanged: opts.PrintChanged,
	}
}

// Run executes one pass under instrumentation and applies its Preserved
// set to the analysis manager.
func (pi *PassInstrumentation) Run(p Pass, f *ir.Func, am *AnalysisManager) (Stats, error) {
	var before string
	if pi.PrintChanged != nil {
		before = f.String()
	}
	// Flight-record the pass start and publish it as the lane's active
	// pass: if p.Run panics, the crash dump names exactly what was
	// executing. Both calls are no-ops without a telemetry session.
	pi.active = p.Name()
	pi.Tel.FlightRecord("pass", p.Name(), f.Name)
	pi.Tel.SetActivePass(p.Name(), f.Name)
	stop := pi.Tel.Span("pass/" + p.Name())
	prev := am.mgr.SetPass(p.Name())
	st, preserved := p.Run(f, am)
	am.mgr.SetPass(prev)
	stop()
	pi.Tel.SetActivePass("", "")
	pi.active = ""
	am.Invalidate(preserved)
	if pi.PrintChanged != nil {
		if after := f.String(); after != before {
			fmt.Fprintf(pi.PrintChanged, "; IR after %s on %s\n%s", p.Name(), f.Name, after)
		}
	}
	if pi.VerifyEach {
		if problems := f.Verify(); len(problems) > 0 {
			return st, fmt.Errorf("verify-each: after %s on %s: %s", p.Name(), f.Name, problems[0])
		}
	}
	return st, nil
}
