package passes

import (
	"math/rand"
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/irgen"
	"repro/internal/ooe"
	"repro/internal/parser"
	"repro/internal/sema"
)

// build compiles src and returns the module plus pass statistics.
func build(t *testing.T, src string, emitPreds bool, opts Options) (*ir.Module, Stats) {
	t.Helper()
	tu, perrs := parser.ParseFile("t.c", src, nil)
	for _, e := range perrs {
		t.Fatalf("parse: %v", e)
	}
	for _, e := range sema.Check(tu) {
		t.Fatalf("sema: %v", e)
	}
	an := ooe.New(ooe.Config{}, ooe.FuncMap(tu))
	reports := an.AnalyzeUnit(tu)
	mod, errs := irgen.Generate(tu, reports, irgen.Options{EmitPredicates: emitPreds})
	for _, e := range errs {
		t.Fatalf("irgen: %v", e)
	}
	st, rerr := RunModule(mod, opts, nil)
	if rerr != nil {
		t.Fatalf("RunModule: %v", rerr)
	}
	if problems := mod.Verify(); len(problems) > 0 {
		t.Fatalf("verify after passes: %v\n%s", problems[0], mod)
	}
	return mod, st
}

// run executes main in a fresh machine.
func run(t *testing.T, mod *ir.Module) int64 {
	t.Helper()
	m := interp.New(mod, interp.DefaultCosts())
	v, err := m.RunMain()
	if err != nil {
		t.Fatalf("interp: %v\n%s", err, mod)
	}
	return v
}

// checkSame compiles src at O0 and O3 (with and without unseq-aa) and
// requires identical results.
func checkSame(t *testing.T, src string) int64 {
	t.Helper()
	o0, _ := build(t, src, true, Options{OptLevel: 0})
	want := run(t, o0)
	o3base, _ := build(t, src, false, DefaultOptions())
	if got := run(t, o3base); got != want {
		t.Fatalf("O3 baseline diverges: got %d want %d\n%s", got, want, o3base)
	}
	withOpts := DefaultOptions()
	o3unseq, _ := build(t, src, true, withOpts)
	if got := run(t, o3unseq); got != want {
		t.Fatalf("O3+unseq diverges: got %d want %d\n%s", got, want, o3unseq)
	}
	return want
}

func TestO3PreservesSemanticsBasics(t *testing.T) {
	srcs := []string{
		"int main() { int s = 0; for (int i = 0; i < 50; i++) s += i; return s; }",
		`int main() {
  int a[16];
  for (int i = 0; i < 16; i++) a[i] = i;
  int s = 0;
  for (int i = 0; i < 16; i++) s += a[i] * a[i];
  return s;
}`,
		`int sq(int x) { return x * x; }
int main() { int s = 0; for (int i = 0; i < 10; i++) s += sq(i); return s; }`,
		`int main() {
  int x = 3;
  int y = x > 2 ? 10 : 20;
  int z = (x = 5, x + 1);
  return y + z;
}`,
		`int g = 4;
int main() { g = g * 3 % 7; return g; }`,
	}
	for _, src := range srcs {
		checkSame(t, src)
	}
}

func TestLICMPromotionMinmax(t *testing.T) {
	// The paper's intro example: *min/*max register-allocated across the
	// loop thanks to the unsequenced assignment's must-not-alias facts.
	src := `double a[64];
void minmax(int n, int *min, int *max) {
  *min = *max = 0;
  for (int i = 0; i < n; i++) {
    *min = (a[i] < a[*min]) ? i : *min;
    *max = (a[i] > a[*max]) ? i : *max;
  }
}
int lo, hi;
int main() {
  for (int i = 0; i < 64; i++) a[i] = (double)((i * 37) % 101);
  minmax(64, &lo, &hi);
  return hi * 1000 + lo;
}`
	o0, _ := build(t, src, true, Options{OptLevel: 0})
	want := run(t, o0)

	unseqOpts := DefaultOptions()
	unseqOpts.InlineThreshold = 0 // keep minmax standalone for the stats
	mod, st := build(t, src, true, unseqOpts)
	if got := run(t, mod); got != want {
		t.Fatalf("optimized result differs: got %d want %d", got, want)
	}
	if st.LICMPromoted < 2 {
		t.Errorf("expected *min and *max promoted, got %d promotions\n%s", st.LICMPromoted, mod)
	}

	// Baseline without unseq facts must NOT promote (min/max may alias
	// each other).
	baseOpts := DefaultOptions()
	baseOpts.UseUnseqAA = false
	baseOpts.InlineThreshold = 0
	modBase, stBase := build(t, src, false, baseOpts)
	if got := run(t, modBase); got != want {
		t.Fatalf("baseline optimized result differs: got %d want %d", got, want)
	}
	if stBase.LICMPromoted >= st.LICMPromoted && st.LICMPromoted > 0 {
		t.Errorf("baseline should promote fewer locations: base=%d unseq=%d",
			stBase.LICMPromoted, st.LICMPromoted)
	}
}

func TestDSEWithUnseqFacts(t *testing.T) {
	// getU32-style: intermediate stores to t->mp die only when the loads
	// of *t->mp are known not to alias t->mp itself.
	src := `struct Tiff { unsigned char *mp; };
unsigned char data[8] = {1, 2, 3, 4, 5, 6, 7, 8};
struct Tiff tf;
unsigned int getU32(struct Tiff *t) {
  unsigned int u = 0;
  u = u * 256 + *t->mp++;
  u = u * 256 + *t->mp++;
  u = u * 256 + *t->mp++;
  u = u * 256 + *t->mp++;
  return u;
}
int main() { tf.mp = data; return (int)(getU32(&tf) % 100000); }`
	o0, _ := build(t, src, true, Options{OptLevel: 0})
	want := run(t, o0)
	mod, st := build(t, src, true, DefaultOptions())
	if got := run(t, mod); got != want {
		t.Fatalf("optimized diverges: got %d want %d\n%s", got, want, mod)
	}
	base := DefaultOptions()
	base.UseUnseqAA = false
	_, stBase := build(t, src, false, base)
	if st.StoresDeleted <= stBase.StoresDeleted {
		t.Errorf("unseq facts should enable more DSE: unseq=%d base=%d",
			st.StoresDeleted, stBase.StoresDeleted)
	}
}

func TestVectorizeSimpleMap(t *testing.T) {
	src := `double a[128], b[128], c[128];
int main() {
  for (int i = 0; i < 128; i++) { b[i] = (double)i; c[i] = (double)(i * 2); }
  for (int i = 0; i < 128; i++) a[i] = b[i] * c[i] + 1.0;
  double s = 0.0;
  for (int i = 0; i < 128; i++) s += a[i];
  return (int)s;
}`
	o0, _ := build(t, src, true, Options{OptLevel: 0})
	want := run(t, o0)
	mod, st := build(t, src, true, DefaultOptions())
	if got := run(t, mod); got != want {
		t.Fatalf("vectorized result differs: got %d want %d\n%s", got, want, mod)
	}
	if st.LoopsVectorized == 0 {
		t.Errorf("expected vectorization; stats: %s\n%s", st, mod)
	}
}

func TestVectorizeReduction(t *testing.T) {
	src := `double x[96], y[96];
int main() {
  for (int i = 0; i < 96; i++) { x[i] = (double)(i % 7); y[i] = (double)(i % 5); }
  double dot = 0.0;
  for (int i = 0; i < 96; i++) dot += x[i] * y[i];
  return (int)dot;
}`
	o0, _ := build(t, src, true, Options{OptLevel: 0})
	want := run(t, o0)
	mod, st := build(t, src, true, DefaultOptions())
	if got := run(t, mod); got != want {
		t.Fatalf("reduction result differs: got %d want %d\n%s", got, want, mod)
	}
	if st.LoopsVectorized == 0 {
		t.Errorf("dot-product loop should vectorize; stats %s\n%s", st, mod)
	}
}

func TestVectorizeRequiresNoAlias(t *testing.T) {
	// Same loop through pointer parameters: without CANT_ALIAS the
	// vectorizer must NOT fire (may-alias); with it, it must.
	tmpl := func(annot string) string {
		return `#define CANT_ALIAS2(a,b) ((a = a) & (b = b))
void scale(double *dst, double *src, int n) {
  for (int i = 0; i < n; i++) {
    ` + annot + `
    dst[i] = src[i] * 2.0;
  }
}
double A[64], B[64];
int main() {
  for (int i = 0; i < 64; i++) B[i] = (double)i;
  scale(A, B, 64);
  double s = 0.0;
  for (int i = 0; i < 64; i++) s += A[i];
  return (int)s;
}`
	}
	plain := tmpl("")
	annotated := tmpl("CANT_ALIAS2(dst[i], src[i]);")

	o0, _ := build(t, plain, true, Options{OptLevel: 0})
	want := run(t, o0)

	// Disable inlining: at an inlined call site the compiler would see the
	// global arguments and vectorize legitimately in both configurations.
	opts := DefaultOptions()
	opts.InlineThreshold = 0

	_, stPlain := build(t, plain, true, opts)
	modAnnot, stAnnot := build(t, annotated, true, opts)
	if got := run(t, modAnnot); got != want {
		t.Fatalf("annotated run differs: got %d want %d\n%s", got, want, modAnnot)
	}
	if stAnnot.LoopsVectorized <= stPlain.LoopsVectorized {
		t.Errorf("annotation should enable extra vectorization: plain=%d annotated=%d\n%s",
			stPlain.LoopsVectorized, stAnnot.LoopsVectorized, modAnnot)
	}
}

func TestVersioningGuardCatchesOverlap(t *testing.T) {
	// The annotation promises per-iteration disjointness; calling with
	// overlapping (but per-iteration-distinct) regions must still compute
	// the scalar-exact result thanks to the versioning guard.
	src := `#define CANT_ALIAS2(a,b) ((a = a) & (b = b))
void shift(double *dst, double *src, int n) {
  for (int i = 0; i < n; i++) {
    CANT_ALIAS2(dst[i], src[i]);
    dst[i] = src[i] + 1.0;
  }
}
double A[65];
int main() {
  for (int i = 0; i < 65; i++) A[i] = (double)i;
  shift(A, A + 1, 64); // dst[i] and src[i] differ per iteration, ranges overlap
  double s = 0.0;
  for (int i = 0; i < 65; i++) s += A[i];
  return (int)s;
}`
	o0, _ := build(t, src, true, Options{OptLevel: 0})
	want := run(t, o0)
	mod, _ := build(t, src, true, DefaultOptions())
	if got := run(t, mod); got != want {
		t.Fatalf("versioning guard failed: got %d want %d\n%s", got, want, mod)
	}
}

func TestUnroll(t *testing.T) {
	src := `int a[61];
int main() {
  for (int i = 0; i < 61; i++) a[i] = i * 3;
  int s = 0;
  for (int i = 0; i < 61; i++) s += a[i];
  return s;
}`
	o0, _ := build(t, src, true, Options{OptLevel: 0})
	want := run(t, o0)
	opts := DefaultOptions()
	opts.VectorWidth = 0 // force unrolling instead of vectorization
	mod, st := build(t, src, true, opts)
	if got := run(t, mod); got != want {
		t.Fatalf("unrolled result differs: got %d want %d\n%s", got, want, mod)
	}
	if st.LoopsUnrolled == 0 {
		t.Errorf("expected unrolling, stats: %s", st)
	}
}

func TestInlineSmallFunctions(t *testing.T) {
	src := `int add3(int a, int b, int c) { return a + b + c; }
int main() {
  int s = 0;
  for (int i = 0; i < 10; i++) s = add3(s, i, 1);
  return s;
}`
	o0, _ := build(t, src, true, Options{OptLevel: 0})
	want := run(t, o0)
	mod, st := build(t, src, true, DefaultOptions())
	if got := run(t, mod); got != want {
		t.Fatalf("inlined result differs: got %d want %d\n%s", got, want, mod)
	}
	if st.CallsInlined == 0 {
		t.Errorf("expected inlining, stats: %s", st)
	}
}

func TestMemsetFormation(t *testing.T) {
	// The gcc cfglayout.c pattern: adjacent null stores to two fields.
	src := `struct rtl { long header; long footer; long visited; };
struct rtl r;
int main() {
  r.visited = 9;
  r.header = r.footer = 0;
  return (int)(r.header + r.footer + r.visited);
}`
	o0, _ := build(t, src, true, Options{OptLevel: 0})
	want := run(t, o0)
	mod, st := build(t, src, true, DefaultOptions())
	if got := run(t, mod); got != want {
		t.Fatalf("memset result differs: got %d want %d\n%s", got, want, mod)
	}
	if st.MemsetsFormed == 0 {
		t.Errorf("expected memset formation\n%s", mod)
	}
}

func TestSelectFormation(t *testing.T) {
	src := `int main() {
  int best = -1;
  for (int i = 0; i < 20; i++) {
    int v = (i * 7) % 13;
    best = v > best ? v : best;
  }
  return best;
}`
	o0, _ := build(t, src, true, Options{OptLevel: 0})
	want := run(t, o0)
	mod, _ := build(t, src, true, DefaultOptions())
	if got := run(t, mod); got != want {
		t.Fatalf("select-formed result differs: got %d want %d\n%s", got, want, mod)
	}
}

func TestCSECountsAndIntrinsicUnification(t *testing.T) {
	// After CSE, the annotation's GEPs must be the same values as the
	// access GEPs so unseq-aa facts apply.
	src := `#define CANT_ALIAS2(a,b) ((a = a) & (b = b))
void f(double *p, double *q, int i) {
  CANT_ALIAS2(p[i], q[i]);
  p[i] = q[i] * 2.0;
}
double X[8], Y[8];
int main() { f(X, Y, 3); return (int)X[3]; }`
	mod, st := build(t, src, true, DefaultOptions())
	_ = mod
	if st.CSESimplified == 0 {
		t.Errorf("expected CSE to unify repeated address computations, stats: %s", st)
	}
}

func TestRandomProgramsO0vsO3(t *testing.T) {
	// Differential testing: random small integer programs must compute
	// the same result at O0 and O3 (+unseq).
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		src := randomProgram(rng)
		o0, _ := build(t, src, true, Options{OptLevel: 0})
		want := run(t, o0)
		o3, _ := build(t, src, true, DefaultOptions())
		if got := run(t, o3); got != want {
			t.Fatalf("trial %d diverged: O0=%d O3=%d\nsource:\n%s", trial, want, got, src)
		}
	}
}

// randomProgram emits a small UB-free program mixing loops, arrays, and
// arithmetic.
func randomProgram(rng *rand.Rand) string {
	n := 8 + rng.Intn(24)
	body := ""
	exprs := []string{"i", "i + 1", "i * 2", "a[i] + 1", "a[i] * 3 - i", "(i % 5) * 7"}
	for k := 0; k < 3; k++ {
		e := exprs[rng.Intn(len(exprs))]
		body += "  for (int i = 0; i < N; i++) a[i] = " + e + ";\n"
	}
	acc := []string{"s += a[i];", "s += a[i] * i;", "s = s + a[i] % 11;", "s ^= a[i];"}
	body += "  for (int i = 0; i < N; i++) { " + acc[rng.Intn(len(acc))] + " }\n"
	return "#define N " + itoa(n) + "\nint a[N];\nint main() {\n  int s = 0;\n" + body + "  return s;\n}"
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
