package passes

import (
	"repro/internal/aa"
	"repro/internal/ir"
	"repro/internal/telemetry"
)

// licm performs loop-invariant code motion: (1) hoists invariant pure
// instructions and provably non-clobbered invariant loads into the
// preheader, then (2) after a CSE round that merges freshly co-located
// address computations (so annotation pointers and access pointers are
// one value), register-promotes memory locations that are only accessed
// through a single invariant pointer inside the loop — LLVM's
// promoteLoopAccessesToScalars, the transform behind the paper's minmax,
// omega.c, toke.c, and delta_encoder.c case studies. Both steps hinge on
// NoAlias answers from the AA chain.
func licm(f *ir.Func, am *AnalysisManager) (hoisted, promoted int) {
	mod := am.Module()
	tel := am.Telemetry()
	mgr := am.AA()
	dt := am.Dom()
	loops := am.Loops()
	// Process inner loops first so promotions compose outward.
	ordered := make([]*ir.Loop, 0, len(loops))
	for depth := 8; depth >= 1; depth-- {
		for _, l := range loops {
			if l.Depth() == depth {
				ordered = append(ordered, l)
			}
		}
	}
	for _, l := range ordered {
		if l.Preheader == nil {
			continue
		}
		hoisted += hoistInvariants(mod, f, l, mgr, dt, tel)
	}
	// Hoisting co-locates duplicated GEP/convert chains; merge them so
	// promotion's value-keyed grouping (and unseq-aa's value-keyed facts)
	// see one pointer per location.
	earlyCSE(mod, f, mgr, nil)
	mgr.Refresh(f)
	for _, l := range ordered {
		if l.Preheader == nil {
			continue
		}
		promoted += promoteScalars(mod, f, l, mgr, dt, tel)
	}
	return hoisted, promoted
}

// loopInstrs enumerates the loop body's instructions.
func loopInstrs(l *ir.Loop) []*ir.Instr {
	var out []*ir.Instr
	for _, b := range blocksOf(l) {
		out = append(out, b.Instrs...)
	}
	return out
}

func blocksOf(l *ir.Loop) []*ir.Block {
	var out []*ir.Block
	fn := l.Header.Fn
	for _, b := range fn.Blocks {
		if l.Blocks[b] {
			out = append(out, b)
		}
	}
	return out
}

// definedInLoop reports whether v is an instruction defined inside l.
func definedInLoop(l *ir.Loop, v ir.Value) bool {
	in, ok := v.(*ir.Instr)
	if !ok {
		return false
	}
	return l.Blocks[in.Block()]
}

// hoistInvariants moves invariant pure instructions and safe invariant
// loads to the preheader, iterating to a fixpoint.
func hoistInvariants(mod *ir.Module, f *ir.Func, l *ir.Loop, mgr *aa.Manager, dt *ir.DomTree, tel *telemetry.Session) int {
	pre := l.Preheader
	hoisted := 0

	// Collect loop memory writes once per round for load hoisting.
	// Calls that may write are kept separately: with interprocedural
	// summaries each one gets a per-candidate CallModRef query instead
	// of vetoing every load hoist in the loop.
	writesIn := func() (ws, calls []*ir.Instr, ok bool) {
		for _, in := range loopInstrs(l) {
			switch in.Op {
			case ir.OpStore, ir.OpVecStore, ir.OpMemset, ir.OpMemcpy:
				ws = append(ws, in)
			case ir.OpCall:
				if _, w := callEffects(mod, in); w {
					if !mgr.HasSummaries() {
						return nil, nil, false // unknown write: no load hoisting
					}
					calls = append(calls, in)
				}
			}
		}
		return ws, calls, true
	}

	for round := 0; round < 4; round++ {
		writes, calls, writesKnown := writesIn()
		changed := false
		for _, b := range blocksOf(l) {
			// Only hoist from blocks that execute on every iteration.
			execEvery := true
			for _, latch := range l.Latches {
				if !dt.Dominates(b, latch) {
					execEvery = false
				}
			}
			if b != l.Header && !execEvery {
				continue
			}
			for i := 0; i < len(b.Instrs); i++ {
				in := b.Instrs[i]
				invariantOperands := true
				for _, a := range in.Args {
					if definedInLoop(l, a) {
						invariantOperands = false
						break
					}
				}
				if !invariantOperands {
					continue
				}
				canHoist := false
				isLoadHoist := false
				switch {
				case isPureValueOp(in):
					canHoist = true
				case in.Op == ir.OpLoad && !in.Volatile && writesKnown:
					canHoist = true
					isLoadHoist = true
					mgr.ResetWindow()
					for _, w := range writes {
						ptr, _ := memLoc(w)
						if ptr == nil {
							canHoist = false
							break
						}
						if mgr.Alias(aa.Location{Ptr: in.Args[0], Size: accessSize(in), Cls: in.Cls},
							locOf(w)) != aa.NoAlias {
							canHoist = false
							break
						}
					}
					if canHoist {
						for _, c := range calls {
							if mgr.CallModRef(c, aa.Location{Ptr: in.Args[0], Size: accessSize(in), Cls: in.Cls})&aa.ModEffect != 0 {
								canHoist = false
								break
							}
						}
					}
					// The load must execute on every iteration to be safe
					// to speculate into the preheader.
					if !execEvery && b != l.Header {
						canHoist = false
					}
				}
				if !canHoist {
					continue
				}
				// Move to the preheader, before its terminator.
				removeAt(b, i)
				i--
				insertBeforeTerm(pre, in)
				hoisted++
				changed = true
				if isLoadHoist {
					emitRemark(tel, mgr, "licm", "LICMHoisted", f.Name, l.Header.Name)
				}
			}
		}
		if !changed {
			break
		}
	}
	return hoisted
}

func insertBeforeTerm(b *ir.Block, in *ir.Instr) {
	n := len(b.Instrs)
	if n > 0 && b.Instrs[n-1].IsTerminator() {
		b.InsertBefore(n-1, in)
	} else {
		b.Append(in)
	}
}

// promoteScalars register-promotes loop memory accessed only through one
// invariant pointer: preheader load into a fresh alloca slot, in-loop
// accesses retargeted to the slot, and stores sunk to every exit edge.
func promoteScalars(mod *ir.Module, f *ir.Func, l *ir.Loop, mgr *aa.Manager, dt *ir.DomTree, tel *telemetry.Session) int {
	pre := l.Preheader

	// Group loop accesses by exact pointer value. Conditional accesses
	// are fine: promoted accesses become register moves, and sinking the
	// final value at the exits is safe because our execution model is
	// single-threaded and loads cannot fault (LLVM needs
	// guaranteed-dereferenceable for the same transform) — this is what
	// lets the gcc omega.c pattern (stores under if/else arms) promote.
	type group struct {
		ptr    ir.Value
		loads  []*ir.Instr
		stores []*ir.Instr
		cls    ir.Class
	}
	// groupOrder keeps first-access order: promotion iterates it instead of
	// the map so emitted preheader loads, exit sinks, and AA query counts
	// are identical on every compile of the same input.
	groups := map[ir.Value]*group{}
	var groupOrder []ir.Value
	var others []*ir.Instr // memory ops not in any group (by pointer)
	var calls []*ir.Instr  // calls with memory effects, summary-checked per group
	for _, b := range blocksOf(l) {
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpLoad, ir.OpStore:
				if in.Volatile {
					others = append(others, in)
					continue
				}
				ptr := in.Args[0]
				if definedInLoop(l, ptr) {
					others = append(others, in)
					continue
				}
				// Scalar alloca slots are already register-class; routing
				// them through another slot would be churn.
				if al, isAl := ptr.(*ir.Instr); isAl && al.Op == ir.OpAlloca && al.AllocSz <= 8 {
					others = append(others, in)
					continue
				}
				g := groups[ptr]
				if g == nil {
					g = &group{ptr: ptr}
					groups[ptr] = g
					groupOrder = append(groupOrder, ptr)
				}
				if in.Op == ir.OpLoad {
					g.loads = append(g.loads, in)
					g.cls = in.Cls
				} else {
					g.stores = append(g.stores, in)
					g.cls = in.Args[1].Class()
				}
			case ir.OpVecLoad, ir.OpVecStore, ir.OpMemset, ir.OpMemcpy:
				others = append(others, in)
			case ir.OpCall:
				r, w := callEffects(mod, in)
				if r || w {
					if !mgr.HasSummaries() {
						return 0 // unknown memory effects: no promotion at all
					}
					calls = append(calls, in)
				}
			}
		}
	}

	promoted := 0
	for _, gptr := range groupOrder {
		g := groups[gptr]
		if len(g.stores) == 0 {
			continue // plain loads are handled by hoisting
		}
		if g.cls == ir.Void {
			continue
		}
		// Attribution window for this promotion candidate's queries.
		mgr.ResetWindow()
		// Mixed-width access groups are not promotable.
		ok := true
		for _, ld := range g.loads {
			if ld.Cls != g.cls {
				ok = false
			}
		}
		if !ok {
			continue
		}
		// No other loop access may alias this location.
		size := g.cls.Size()
		for _, o := range others {
			ptr, _ := memLoc(o)
			if ptr == nil {
				ok = false
				break
			}
			if mgr.Alias(aa.Location{Ptr: g.ptr, Size: size, Cls: g.cls},
				locOf(o)) != aa.NoAlias {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		// While the location lives in a register slot, no call may
		// observe (read) or update (write) it behind the loop's back.
		for _, c := range calls {
			if mgr.CallModRef(c, aa.Location{Ptr: g.ptr, Size: size, Cls: g.cls}) != 0 {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for _, optr := range groupOrder {
			og := groups[optr]
			if og == g {
				continue
			}
			if len(og.stores) == 0 && len(og.loads) == 0 {
				continue
			}
			osz := og.cls.Size()
			if osz == 0 {
				osz = 8
			}
			// Distinct pointer groups must be disjoint unless both are
			// read-only.
			if len(g.stores) > 0 || len(og.stores) > 0 {
				if mgr.Alias(aa.Location{Ptr: g.ptr, Size: size, Cls: g.cls},
					aa.Location{Ptr: og.ptr, Size: osz, Cls: og.cls}) != aa.NoAlias {
					ok = false
					break
				}
			}
		}
		if !ok {
			continue
		}

		// Sinking the final value needs a dedicated exit block per exit
		// edge (our structured lowering provides them); bail out before
		// mutating anything if an exit target is shared.
		preds := f.Preds()
		exitsOK := true
		for _, e := range l.Exits {
			if len(preds[e[1]]) != 1 {
				exitsOK = false
			}
		}
		if !exitsOK {
			continue
		}

		// Promote: tmp = alloca; preheader: tmp <- load ptr; loop
		// accesses retargeted; exits: ptr <- load tmp.
		var gsp ir.SrcSpan // span of the promoted access group
		if len(g.loads) > 0 {
			gsp = g.loads[0].Span
		} else if len(g.stores) > 0 {
			gsp = g.stores[0].Span
		}
		entry := f.Entry()
		tmp := &ir.Instr{Op: ir.OpAlloca, Cls: ir.Ptr, Name: "promote", AllocSz: size, Span: gsp}
		entry.InsertBefore(0, tmp)

		preLoad := &ir.Instr{Op: ir.OpLoad, Cls: g.cls, Args: []ir.Value{g.ptr}, Span: gsp}
		insertBeforeTerm(pre, preLoad)
		preStore := &ir.Instr{Op: ir.OpStore, Cls: ir.Void, Args: []ir.Value{tmp, preLoad}, Span: gsp}
		insertBeforeTerm(pre, preStore)

		for _, ld := range g.loads {
			ld.Args[0] = tmp
		}
		for _, st := range g.stores {
			st.Args[0] = tmp
		}

		// Sink the final value on every exit edge.
		for _, e := range l.Exits {
			exit := e[1]
			reload := &ir.Instr{Op: ir.OpLoad, Cls: g.cls, Args: []ir.Value{tmp}, Span: gsp}
			exit.InsertBefore(0, reload)
			sink := &ir.Instr{Op: ir.OpStore, Cls: ir.Void, Args: []ir.Value{g.ptr, reload}, Span: gsp}
			exit.InsertBefore(1, sink)
		}
		promoted++
		emitRemark(tel, mgr, "licm", "LICMPromoted", f.Name, l.Header.Name)
	}
	return promoted
}
