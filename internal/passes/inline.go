package passes

import (
	"repro/internal/ir"
	"repro/internal/telemetry"
)

// inlineCalls replaces direct calls to small, non-recursive functions
// with a copy of the callee body. Must-not-alias intrinsics in the callee
// are cloned along with the rest (the paper counts these as extra "final
// predicates"). The perlbench case study (§4.2.2) hinges on inlining: a
// shorter optimized callee fits the threshold and gets inlined
// everywhere, which is also why the cost model carries an icache penalty
// for oversized functions.
//
// resolve supplies the callee body to splice. The parallel scheduler
// passes a resolver that reproduces sequential pipeline order — the
// already-optimized body for functions the sequential pipeline would
// have finished, a pre-pipeline snapshot otherwise — so inlining reads
// no function another worker may be mutating. A nil resolve falls back
// to the live module.
func inlineCalls(mod *ir.Module, resolve func(string) *ir.Func, f *ir.Func, threshold int, tel *telemetry.Session) int {
	if mod == nil && resolve == nil {
		return 0
	}
	if resolve == nil {
		resolve = mod.FindFunc
	}
	inlined := 0
	for bi := 0; bi < len(f.Blocks); bi++ {
		b := f.Blocks[bi]
		for i := 0; i < len(b.Instrs); i++ {
			in := b.Instrs[i]
			if in.Op != ir.OpCall || in.Callee == "" || in.Callee == f.Name {
				continue
			}
			callee := resolve(in.Callee)
			if callee == nil || len(callee.Blocks) == 0 {
				continue
			}
			if callee.NumInstrs() > threshold || isRecursive(callee) {
				continue
			}
			if inlineOne(f, b, i, in, callee) {
				inlined++
				emitRemark(tel, nil, "inline", "CallInlined:"+callee.Name, f.Name, b.Name)
				// The block was split; restart scanning from the next
				// block to avoid revisiting cloned instructions twice.
				break
			}
		}
	}
	return inlined
}

func isRecursive(f *ir.Func) bool {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpCall && in.Callee == f.Name {
				return true
			}
		}
	}
	return false
}

// inlineOne splices callee's body in place of the call at b.Instrs[idx].
func inlineOne(f *ir.Func, b *ir.Block, idx int, call *ir.Instr, callee *ir.Func) bool {
	// Split b at the call: tail goes to a continuation block.
	cont := f.NewBlock("inline.cont")
	tail := make([]*ir.Instr, len(b.Instrs[idx+1:]))
	copy(tail, b.Instrs[idx+1:])
	for _, in := range tail {
		ir.SetBlock(in, cont)
	}
	cont.Instrs = tail
	b.Instrs = b.Instrs[:idx] // drop the call and the tail

	// Result slot for the return value.
	var resSlot *ir.Instr
	if call.Cls != ir.Void {
		resSlot = &ir.Instr{Op: ir.OpAlloca, Cls: ir.Ptr, Name: "inline.ret", AllocSz: call.Cls.Size(), Span: call.Span}
		f.Entry().InsertBefore(0, resSlot)
	}

	// Clone callee blocks.
	remap := map[ir.Value]ir.Value{}
	blockMap := map[*ir.Block]*ir.Block{}
	for _, cb := range callee.Blocks {
		nb := f.NewBlock("inl." + callee.Name)
		blockMap[cb] = nb
	}
	for pi, p := range callee.Params {
		if pi < len(call.Args) {
			remap[p] = call.Args[pi]
		} else {
			remap[p] = ir.ConstInt(p.Cls, 0)
		}
	}
	for _, cb := range callee.Blocks {
		nb := blockMap[cb]
		for _, in := range cb.Instrs {
			cl := &ir.Instr{
				Op: in.Op, Cls: in.Cls, Name: in.Name, AllocSz: in.AllocSz,
				Scale: in.Scale, Off: in.Off, Pred: in.Pred, Callee: in.Callee,
				Width: in.Width, VecOp: in.VecOp, Unsigned: in.Unsigned, Meta: in.Meta,
				Volatile: in.Volatile, Span: in.Span,
			}
			if in.Op == ir.OpRet {
				// Store result and branch to the continuation.
				if len(in.Args) > 0 && resSlot != nil {
					v := in.Args[0]
					if r, ok := remap[v]; ok {
						v = r
					}
					st := &ir.Instr{Op: ir.OpStore, Cls: ir.Void, Args: []ir.Value{resSlot, v}, Span: in.Span}
					nb.Append(st)
				}
				nb.Append(&ir.Instr{Op: ir.OpBr, Cls: ir.Void, Target: cont, Span: in.Span})
				continue
			}
			cl.Args = make([]ir.Value, len(in.Args))
			for ai, a := range in.Args {
				if r, ok := remap[a]; ok {
					cl.Args[ai] = r
				} else {
					cl.Args[ai] = a
				}
			}
			if in.Target != nil {
				cl.Target = blockMap[in.Target]
			}
			if in.Then != nil {
				cl.Then = blockMap[in.Then]
			}
			if in.Else != nil {
				cl.Else = blockMap[in.Else]
			}
			nb.Append(cl)
			remap[in] = cl
		}
	}

	// b falls through to the inlined entry.
	b.Append(&ir.Instr{Op: ir.OpBr, Cls: ir.Void, Target: blockMap[callee.Entry()], Span: call.Span})

	// Replace the call's value with a load of the result slot at the top
	// of the continuation.
	if resSlot != nil {
		ld := &ir.Instr{Op: ir.OpLoad, Cls: call.Cls, Args: []ir.Value{resSlot}, Span: call.Span}
		cont.InsertBefore(0, ld)
		replaceUses(f, call, ld)
	}
	return true
}
