package passes

import (
	"strings"
	"testing"

	"repro/internal/aa"
	"repro/internal/ir"
)

// sumsFor builds the call graph and bottom-up summaries the way
// RunModule does, from C source.
func sumsFor(t *testing.T, src string) (*ir.Module, *CallGraph, *aa.Summaries) {
	t.Helper()
	mod := benchModule(t, src)
	cg := BuildCallGraph(mod)
	return mod, cg, aa.BuildSummaries(mod, cg.BottomUp(), pureBuiltin)
}

const chainSrc = `
int g;
int leaf(int *p, int k) { *p = *p + k; return g; }
int mid(int *a, int *b) { return leaf(a, 1) + *b; }
int main(void) { int x = 3, y = 4; g = 2; return mid(&x, &y); }
`

// TestCallGraphBottomUpOrder: a straight call chain must come out as
// singleton SCCs in callee-before-caller order, and Reachable must give
// the transitive closure.
func TestCallGraphBottomUpOrder(t *testing.T) {
	mod, cg, _ := sumsFor(t, chainSrc)

	groups := cg.BottomUp()
	if len(groups) != 3 {
		t.Fatalf("BottomUp groups = %d, want 3:\n%s", len(groups), cg.String())
	}
	order := map[string]int{}
	for gi, fns := range groups {
		if len(fns) != 1 {
			t.Errorf("group %d has %d functions, want singleton", gi, len(fns))
		}
		for _, f := range fns {
			order[f.Name] = gi
		}
	}
	if !(order["leaf"] < order["mid"] && order["mid"] < order["main"]) {
		t.Errorf("bottom-up order wrong: %v", order)
	}

	reach := cg.Reachable()
	mainIdx := cg.Index("main")
	if mainIdx < 0 {
		t.Fatal("main not in call graph")
	}
	want := map[string]bool{"leaf": true, "mid": true}
	for j := range reach[mainIdx] {
		delete(want, mod.Funcs[j].Name)
	}
	if len(want) != 0 {
		t.Errorf("main's reachable set misses %v", want)
	}
	leafIdx := cg.Index("leaf")
	if n := len(reach[leafIdx]); n != 0 {
		t.Errorf("leaf reaches %d functions, want 0", n)
	}
}

const mutualSrc = `
int g;
int odd(int n);
int even(int n) { if (n == 0) { g = g + 1; return 1; } return odd(n - 1); }
int odd(int n) { if (n == 0) return 0; return even(n - 1); }
int main(void) { return even(4); }
`

// TestCallGraphMutualRecursionSCC: even/odd form one SCC that precedes
// main in bottom-up order.
func TestCallGraphMutualRecursionSCC(t *testing.T) {
	_, cg, _ := sumsFor(t, mutualSrc)
	ei, oi := cg.Index("even"), cg.Index("odd")
	if ei < 0 || oi < 0 {
		t.Fatal("even/odd missing from call graph")
	}
	if cg.Nodes[ei].SCC != cg.Nodes[oi].SCC {
		t.Errorf("even in scc %d, odd in scc %d; want same", cg.Nodes[ei].SCC, cg.Nodes[oi].SCC)
	}
	mi := cg.Index("main")
	if cg.Nodes[mi].SCC <= cg.Nodes[ei].SCC {
		t.Errorf("main scc %d not after even/odd scc %d", cg.Nodes[mi].SCC, cg.Nodes[ei].SCC)
	}
	groups := cg.BottomUp()
	if len(groups) != 2 {
		t.Fatalf("BottomUp groups = %d, want 2 ({even,odd} then {main})", len(groups))
	}
	if len(groups[0]) != 2 {
		t.Errorf("first group has %d functions, want the even/odd pair", len(groups[0]))
	}
}

// TestSummaryMutualRecursionFixpoint: only even touches @g directly,
// but the SCC fixpoint must surface the effect in odd's summary too
// (odd calls even), and both must stay below ⊤.
func TestSummaryMutualRecursionFixpoint(t *testing.T) {
	mod, _, sums := sumsFor(t, mutualSrc)
	var g *ir.Global
	for _, gl := range mod.Globals {
		if gl.Name == "g" {
			g = gl
		}
	}
	if g == nil {
		t.Fatal("no global g")
	}
	for _, name := range []string{"even", "odd"} {
		fs := sums.Of(name)
		if fs == nil {
			t.Fatalf("no summary for %s", name)
		}
		if fs.Top() {
			t.Errorf("%s summary degraded to ⊤: %s", name, fs)
		}
		found := aa.Effect(0)
		for _, ge := range fs.Globals {
			if ge.Global == g {
				found = ge.Eff
			}
		}
		if found != aa.ModRefEffect {
			t.Errorf("%s effect on @g = %v, want mod+ref (fixpoint propagation)", name, found)
		}
	}
}

// TestSummaryDirectVsWide: an exact-pointer access summarizes as a
// direct sized effect (π-answerable at call sites); an indexed loop
// access must be classified wide (whole-object queries only).
func TestSummaryDirectVsWide(t *testing.T) {
	src := `
int touch(int *p, int k) { *p = *p + k; return 0; }
int fill(int *p, int n) { for (int i = 0; i < n; i++) p[i] = i; return 0; }
int main(void) { int v[8]; touch(v, 1); fill(v, 8); return v[0]; }
`
	_, _, sums := sumsFor(t, src)

	te := sums.Of("touch").Params[0]
	if te.Eff != aa.ModRefEffect || te.Wide {
		t.Errorf("touch p = %+v, want direct mod+ref", te)
	}
	if te.DirectSize != 4 || te.DirectCls != ir.I32 {
		t.Errorf("touch p direct access = %dB %v, want 4B i32", te.DirectSize, te.DirectCls)
	}

	fe := sums.Of("fill").Params[0]
	if fe.Eff&aa.ModEffect == 0 || !fe.Wide {
		t.Errorf("fill p = %+v, want wide mod", fe)
	}
}

// TestSummaryExternalAndIndirectTop: calls the analysis cannot resolve
// — unknown externals, indirect calls, and arity-mismatched calls —
// must degrade the caller's summary toward ⊤, never stay optimistic.
func TestSummaryExternalAndIndirectTop(t *testing.T) {
	// External callee with no body in the module.
	_, _, sums := sumsFor(t, `
int mystery(int *p);
int caller(int *p) { return mystery(p); }
int main(void) { int x = 1; return caller(&x); }
`)
	if fs := sums.Of("caller"); !fs.Top() {
		t.Errorf("caller of unknown external = %s, want ⊤", fs)
	}

	// Indirect call: hand-built IR, since a FuncRef-typed callee erases
	// the name at the call site (Callee == "").
	w := &ir.Func{Name: "w", Ret: ir.I32}
	p := &ir.Param{Name: "p", Cls: ir.Ptr, Idx: 0}
	w.Params = []*ir.Param{p}
	wb := w.NewBlock("entry")
	wb.Append(&ir.Instr{Op: ir.OpStore, Cls: ir.Void, Args: []ir.Value{p, ir.ConstInt(ir.I32, 1)}})
	wb.Append(&ir.Instr{Op: ir.OpRet, Cls: ir.I32, Args: []ir.Value{ir.ConstInt(ir.I32, 0)}})

	ind := &ir.Func{Name: "ind", Ret: ir.I32}
	ib := ind.NewBlock("entry")
	ib.Append(&ir.Instr{Op: ir.OpCall, Cls: ir.I32}) // Callee == "": function pointer
	ib.Append(&ir.Instr{Op: ir.OpRet, Cls: ir.I32, Args: []ir.Value{ir.ConstInt(ir.I32, 0)}})

	// Arity mismatch: w wants (p); short calls must not bind w's pointer
	// effect to a missing argument — it lands in Unknown instead.
	short := &ir.Func{Name: "short", Ret: ir.I32}
	sb := short.NewBlock("entry")
	sb.Append(&ir.Instr{Op: ir.OpCall, Cls: ir.I32, Callee: "w"})
	sb.Append(&ir.Instr{Op: ir.OpRet, Cls: ir.I32, Args: []ir.Value{ir.ConstInt(ir.I32, 0)}})

	mod := &ir.Module{Funcs: []*ir.Func{w, ind, short}}
	cg := BuildCallGraph(mod)
	if !cg.Nodes[cg.Index("ind")].Indirect {
		t.Error("indirect call not flagged on the call-graph node")
	}
	hs := aa.BuildSummaries(mod, cg.BottomUp(), pureBuiltin)
	if fs := hs.Of("ind"); !fs.Top() {
		t.Errorf("indirect caller = %s, want ⊤", fs)
	}
	if fs := hs.Of("short"); fs.Unknown&aa.ModEffect == 0 {
		t.Errorf("arity-mismatched caller = %s, want unknown mod effect", fs)
	}
}

// TestSummaryPiExport: an entry-block CANT_ALIAS2 over plain parameter
// pointers exports a PiParamPair, and a wrapper forwarding its own
// params into that callee re-exports the fact transitively.
func TestSummaryPiExport(t *testing.T) {
	src := `
#define CANT_ALIAS2(a, b) ((a = a) + (b = b))
int kernel(int *a, int *b) { CANT_ALIAS2(*a, *b); *a = *a + 1; return *b; }
int wrap(int *x, int *y) { return kernel(x, y); }
int main(void) { int u = 1, v = 2; return wrap(&u, &v); }
`
	_, _, sums := sumsFor(t, src)
	for _, name := range []string{"kernel", "wrap"} {
		fs := sums.Of(name)
		ok := false
		for _, pr := range fs.PiPairs {
			if (pr.I == 0 && pr.J == 1) || (pr.I == 1 && pr.J == 0) {
				ok = true
				if pr.Meta == 0 {
					t.Errorf("%s π pair lacks provenance id", name)
				}
			}
		}
		if !ok {
			t.Errorf("%s summary exports no (p0,p1) π pair: %s", name, fs)
		}
	}
}

// TestCallGraphStringShape pins the -print-callgraph rendering on the
// chain example.
func TestCallGraphStringShape(t *testing.T) {
	_, cg, _ := sumsFor(t, chainSrc)
	out := cg.String()
	for _, want := range []string{
		"callgraph:",
		"leaf -> (leaf)",
		"mid -> leaf",
		"main -> mid",
		"bottom-up SCC order:",
		"scc 0: {leaf}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("callgraph rendering missing %q:\n%s", want, out)
		}
	}
}
