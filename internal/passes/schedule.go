package passes

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/aa"
	"repro/internal/ir"
	"repro/internal/telemetry"
)

// The middle-end is function-local, so RunModule shards the per-function
// pipeline across a bounded worker pool. The only cross-function reads
// are (a) callee effect summaries — the immutable ReadNone bit, safe on
// the live module — and (b) callee bodies spliced by the inliner. The
// scheduler makes (b) both race-free and deterministic by reproducing
// the sequential pipeline's visibility rule: when function i runs, every
// function j < i it can transitively reach has already finished (a DAG
// dependency), and every reachable j >= i is read from an immutable
// pre-pipeline snapshot — exactly the state the sequential loop would
// have observed. Results (stats, AA counters, telemetry forks) merge in
// original function order, so IR, remarks, and metrics are byte-stable
// regardless of worker count or interleaving.

// funcResult collects one function's pipeline output for ordered fan-in.
type funcResult struct {
	stats Stats
	aa    aa.Stats
	tel   *telemetry.Session
	err   error
}

// runFuncs optimizes every function in mod, fanning out across
// opts.Jobs workers (0 = GOMAXPROCS). Jobs == 1 runs the plain
// sequential loop — the differential-testing oracle the parallel path
// must match byte-for-byte. Failures (verify-each findings and
// recovered pass panics) do not stop the other functions: every
// function runs, and the errors aggregate with errors.Join in source
// order, so -j 1 and -j N report the same failures in the same order.
func runFuncs(mod *ir.Module, opts Options, aaStats *aa.Stats, ma *ModuleAnalyses, sums *aa.Summaries) (Stats, error) {
	var total Stats
	n := len(mod.Funcs)
	if n == 0 {
		return total, nil
	}
	jobs := opts.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > n {
		jobs = n
	}
	if jobs == 1 || n == 1 {
		errs := make([]error, 0, n)
		for _, f := range mod.Funcs {
			start := time.Now()
			st, err := runFunc(mod, f, opts, aaStats, nil, sums)
			opts.Telemetry.AddLaneBusy(time.Since(start))
			total.Add(st)
			errs = append(errs, err)
		}
		return total, errors.Join(errs...)
	}

	// The shared call graph supplies the reachability relation (it was
	// built from the pre-pipeline bodies in RunModule, before any worker
	// could mutate a function).
	cg := ma.SnapshotCallGraph()
	if cg == nil {
		cg = ma.CallGraph()
	}
	idx := make(map[string]int, n)
	for i, f := range mod.Funcs {
		idx[f.Name] = i
	}
	reach := cg.Reachable()

	// deps[i] = reachable functions with a smaller index: those the
	// sequential pipeline would have finished before starting i, so the
	// inliner must see their final bodies. Larger-index reachable
	// functions are snapshotted pre-pipeline instead.
	depCount := make([]int32, n)
	dependents := make([][]int, n)
	orig := make([]*ir.Func, n)
	for i := 0; i < n; i++ {
		for j := range reach[i] {
			if j < i {
				depCount[i]++
				dependents[j] = append(dependents[j], i)
			} else if j > i && orig[j] == nil {
				orig[j] = ir.CloneFunc(mod.Funcs[j])
			}
		}
	}

	resolveFor := func(i int) func(string) *ir.Func {
		return func(name string) *ir.Func {
			j, ok := idx[name]
			if !ok {
				return nil
			}
			if j < i {
				return mod.Funcs[j] // finished: dependency-ordered
			}
			// Pre-pipeline snapshot; nil (never inlined) only if the
			// call graph said i cannot reach j — then the pipeline
			// never asks for it.
			return orig[j]
		}
	}

	tel := opts.Telemetry
	results := make([]funcResult, n)
	ready := make(chan int, n)
	for i := 0; i < n; i++ {
		if depCount[i] == 0 {
			ready <- i
		}
	}
	var done int32
	var wg sync.WaitGroup
	wg.Add(jobs)
	for w := 0; w < jobs; w++ {
		go func(lane int) {
			defer wg.Done()
			for i := range ready {
				r := &results[i]
				// The per-function work runs inside a recover shield:
				// runFunc recovers pass panics itself, but a panic in
				// the scheduling shell (telemetry forks, clone
				// resolution) must still not take down the pool or
				// strand dependents waiting on this function.
				func() {
					defer func() {
						if rec := recover(); rec != nil {
							r.err = newPanicError(mod.Funcs[i].Name, "", rec)
						}
					}()
					o := opts
					o.Telemetry = tel.ForkLane(lane)
					r.tel = o.Telemetry
					start := time.Now()
					r.stats, r.err = runFunc(mod, mod.Funcs[i], o, &r.aa, resolveFor(i), sums)
					o.Telemetry.AddLaneBusy(time.Since(start))
				}()
				for _, d := range dependents[i] {
					if atomic.AddInt32(&depCount[d], -1) == 0 {
						ready <- d
					}
				}
				if atomic.AddInt32(&done, 1) == int32(n) {
					close(ready)
				}
			}
		}(w + 1)
	}
	wg.Wait()

	// Fan-in strictly in original function order: telemetry names
	// register in the same sequence a sequential run would produce, and
	// errors aggregate exactly as the sequential loop reports them.
	errs := make([]error, 0, n)
	for i := range results {
		total.Add(results[i].stats)
		if aaStats != nil {
			aaStats.Add(results[i].aa)
		}
		tel.Merge(results[i].tel)
		errs = append(errs, results[i].err)
	}
	return total, errors.Join(errs...)
}
