// Package passes implements the optimization pipeline the paper's
// evaluation exercises: EarlyCSE/GVN, instcombine, SimplifyCFG, DCE, DSE,
// LICM (invariant hoisting + scalar promotion), loop unrolling, loop
// vectorization with versioning guards, function inlining, and
// MemCpyOpt. Every memory-dependent decision goes through the aa.Manager
// chain, so the extra NoAlias answers contributed by unseq-aa directly
// enable additional transforms — the causal chain the paper measures.
package passes

import (
	"fmt"
	"io"

	"repro/internal/aa"
	"repro/internal/ir"
	"repro/internal/telemetry"
)

// Stats aggregates the per-pass counters reported in the paper's §4.2.2
// compile-time statistics.
type Stats struct {
	CSESimplified   int // instructions simplified/eliminated (GVN-alikes)
	NodesCombined   int // instcombine folds (SelectionDAG analog)
	StoresDeleted   int // DSE
	LICMHoisted     int // invariant instructions hoisted
	LICMPromoted    int // memory locations register-promoted
	LoopsUnrolled   int
	LoopsVectorized int
	CallsInlined    int
	FuncsDeleted    int
	MemsetsFormed   int
	DCERemoved      int
	BlocksMerged    int
	// RegsAssigned approximates "registers assigned during register
	// allocation": scalar alloca slots live at the end of optimization.
	RegsAssigned int
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.CSESimplified += other.CSESimplified
	s.NodesCombined += other.NodesCombined
	s.StoresDeleted += other.StoresDeleted
	s.LICMHoisted += other.LICMHoisted
	s.LICMPromoted += other.LICMPromoted
	s.LoopsUnrolled += other.LoopsUnrolled
	s.LoopsVectorized += other.LoopsVectorized
	s.CallsInlined += other.CallsInlined
	s.FuncsDeleted += other.FuncsDeleted
	s.MemsetsFormed += other.MemsetsFormed
	s.DCERemoved += other.DCERemoved
	s.BlocksMerged += other.BlocksMerged
	s.RegsAssigned += other.RegsAssigned
}

func (s Stats) String() string {
	return fmt.Sprintf("cse=%d combine=%d dse=%d hoist=%d promote=%d unroll=%d vec=%d inline=%d funcdel=%d memset=%d dce=%d blockmerge=%d regs=%d",
		s.CSESimplified, s.NodesCombined, s.StoresDeleted, s.LICMHoisted,
		s.LICMPromoted, s.LoopsUnrolled, s.LoopsVectorized, s.CallsInlined,
		s.FuncsDeleted, s.MemsetsFormed, s.DCERemoved, s.BlocksMerged,
		s.RegsAssigned)
}

// Record exports every counter into the telemetry registry under the
// pass/ namespace.
func (s Stats) Record(tel *telemetry.Session) {
	if !tel.MetricsEnabled() {
		return
	}
	tel.Count("pass/cse_simplified", int64(s.CSESimplified))
	tel.Count("pass/nodes_combined", int64(s.NodesCombined))
	tel.Count("pass/stores_deleted", int64(s.StoresDeleted))
	tel.Count("pass/licm_hoisted", int64(s.LICMHoisted))
	tel.Count("pass/licm_promoted", int64(s.LICMPromoted))
	tel.Count("pass/loops_unrolled", int64(s.LoopsUnrolled))
	tel.Count("pass/loops_vectorized", int64(s.LoopsVectorized))
	tel.Count("pass/calls_inlined", int64(s.CallsInlined))
	tel.Count("pass/funcs_deleted", int64(s.FuncsDeleted))
	tel.Count("pass/memsets_formed", int64(s.MemsetsFormed))
	tel.Count("pass/dce_removed", int64(s.DCERemoved))
	tel.Count("pass/blocks_merged", int64(s.BlocksMerged))
	tel.Count("pass/regs_assigned", int64(s.RegsAssigned))
}

// Options configures the pipeline.
type Options struct {
	// UseUnseqAA plugs the paper's unseq-aa into the AA chain (the
	// OOElala configuration; off = baseline Clang-like pipeline).
	UseUnseqAA bool
	// OptLevel 0 disables everything; 2/3 run the full pipeline.
	OptLevel int
	// InlineThreshold is the callee instruction-count limit.
	InlineThreshold int
	// UnrollFactor / VectorWidth tune the loop transforms.
	UnrollFactor int
	VectorWidth  int
	// MemcheckThreshold is the loop-versioning budget: the number of
	// runtime alias checks the vectorizer may spend on pairs the AA
	// chain could NOT resolve. It is only granted when unseq-aa is in
	// the chain — modelling the paper's observation that the extra
	// must-not-alias facts flip the vectorizer's cost calculation from
	// "versioning unprofitable" to "profitable" (the regmove.c story).
	MemcheckThreshold int
	// MaxIterations bounds the cleanup fixpoint.
	MaxIterations int
	// Jobs bounds the per-function pipeline worker pool: the middle-end
	// is function-local, so RunModule shards it across Jobs workers with
	// output merged in original function order (byte-identical to a
	// sequential run regardless of scheduling). 0 = GOMAXPROCS; 1 runs
	// the plain sequential path, the differential-testing oracle.
	Jobs int
	// Telemetry receives per-pass spans and optimization remarks. Nil
	// (the default) is a zero-overhead no-op sink.
	Telemetry *telemetry.Session
	// Pipeline overrides the pass sequence (nil = DefaultPipeline, the
	// parsed DefaultPipelineSpec). Parse custom sequences with
	// ParsePipeline (the -passes CLI flag).
	Pipeline *Pipeline
	// VerifyEach runs the IR verifier after every pass and fails the
	// compilation at the first broken invariant (-verify-each).
	VerifyEach bool
	// PrintChanged, when non-nil, receives a function's IR after every
	// pass that changed it (-print-changed). Forces Jobs to 1 so the
	// dump order matches the sequential pipeline.
	PrintChanged io.Writer
	// InterprocSummaries enables the bottom-up call-graph summary tier:
	// mod/ref effects resolved per call site instead of the blanket
	// call barrier, plus π-pair propagation through arguments when
	// unseq-aa is on. Summaries are computed once from the pre-pipeline
	// module and are read-only during the function pipelines (sound
	// because optimization never makes a function touch memory it could
	// not already touch; see DESIGN.md §12). -interproc=false restores
	// the call-barrier behaviour for A/B measurement.
	InterprocSummaries bool
	// ModuleAnalyses, when non-nil, is the caller-owned module-level
	// analysis manager RunModule should use (and leave populated for
	// inspection: -print-callgraph/-print-summaries, per-function cache
	// keys). Nil makes RunModule create a private one.
	ModuleAnalyses *ModuleAnalyses
	// WantFuncKeys makes RunModule capture per-function content keys
	// (FuncKeys) from the pre-pipeline module into ModuleAnalyses — the
	// compile service's sub-TU cache identities.
	WantFuncKeys bool
}

// DefaultOptions is -O3.
func DefaultOptions() Options {
	return Options{
		UseUnseqAA:         true,
		OptLevel:           3,
		InlineThreshold:    60,
		UnrollFactor:       4,
		VectorWidth:        4,
		MemcheckThreshold:  3,
		MaxIterations:      3,
		InterprocSummaries: true,
	}
}

// RunModule optimizes every function with the configured pipeline
// (opts.Pipeline, default DefaultPipeline) and returns aggregate
// statistics. AA query statistics accumulate into aaStats if non-nil.
// The per-function pipeline is sharded across opts.Jobs workers (see
// Options.Jobs); results merge in original function order, so the
// output is independent of scheduling. Errors come from opts.VerifyEach
// findings and from pass panics recovered into *PanicError; failures
// are contained to their function and aggregate with errors.Join in
// source order — the remaining functions still run.
func RunModule(mod *ir.Module, opts Options, aaStats *aa.Stats) (Stats, error) {
	var total Stats
	if opts.OptLevel == 0 {
		return total, nil
	}
	if opts.MaxIterations <= 0 {
		opts.MaxIterations = 1
	}
	if opts.Pipeline == nil {
		opts.Pipeline = DefaultPipeline()
	}
	if opts.PrintChanged != nil {
		// Interleaved worker dumps would be useless; match the
		// sequential pipeline's order instead.
		opts.Jobs = 1
	}
	sizes := map[string]int{}
	for _, f := range mod.Funcs {
		sizes[f.Name] = f.NumInstrs()
	}
	// Module-level analyses run eagerly against the pre-pipeline module
	// so every worker — at any job count — consumes the same snapshot.
	ma := opts.ModuleAnalyses
	if ma == nil {
		ma = NewModuleAnalyses(mod)
	}
	var sums *aa.Summaries
	if opts.InterprocSummaries {
		sums = ma.Summaries()
	} else {
		ma.CallGraph() // the scheduler needs reachability either way
	}
	if opts.WantFuncKeys {
		ma.FuncKeys()
	}
	total, err := runFuncs(mod, opts, aaStats, ma, sums)
	ma.record(opts.Telemetry)
	if err != nil {
		return total, err
	}
	total.FuncsDeleted = removeDeadFuncs(mod, sizes, total.CallsInlined > 0)
	if total.CallsInlined > 0 || total.FuncsDeleted > 0 {
		// The inliner/DCE edited the call graph: whoever consumes the
		// module analyses next (a second RunModule, a live dump of the
		// post-pipeline graph) must recompute them. The pre-pipeline
		// snapshots (SnapshotSummaries, FuncKeys) survive by design.
		ma.Invalidate(ModulePreserveNone)
	}
	return total, nil
}

// removeDeadFuncs deletes now-uncalled functions after inlining and
// returns how many were removed. The heuristic: a function is deleted
// only when (a) at least one call was inlined somewhere in the module
// (inlined=false is the conservative no-op — external harnesses call
// functions by name), (b) no remaining call site or function reference
// names it, (c) it is not main, and (d) its pre-optimization size was
// within the inline threshold's reach (<= 40 instructions) — a small
// function that lost all its callers to inlining, not a large entry
// point an external harness may still want.
func removeDeadFuncs(mod *ir.Module, sizes map[string]int, inlined bool) int {
	if !inlined {
		return 0
	}
	called := map[string]bool{"main": true}
	for _, f := range mod.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpCall && in.Callee != "" {
					called[in.Callee] = true
				}
				for _, a := range in.Args {
					if fr, ok := a.(*ir.FuncRef); ok {
						called[fr.Name] = true
					}
				}
			}
		}
	}
	var kept []*ir.Func
	deleted := 0
	for _, f := range mod.Funcs {
		if called[f.Name] || sizes[f.Name] > 40 {
			kept = append(kept, f)
		} else {
			deleted++
		}
	}
	mod.Funcs = kept
	return deleted
}

// runFunc runs the pipeline on one function. resolve supplies callee
// bodies for inlining (nil = the live module; the parallel scheduler
// passes a snapshot-aware resolver). A panic anywhere in the pipeline
// is recovered into a *PanicError attributing the executing pass and
// function, so one broken pass fails this function instead of the
// whole process.
func runFunc(mod *ir.Module, f *ir.Func, opts Options, aaStats *aa.Stats, resolve func(string) *ir.Func, sums *aa.Summaries) (st Stats, err error) {
	tel := opts.Telemetry
	if tel.TraceEnabled() {
		// Per-function span (trace-only: too high-cardinality for the
		// -time-passes accumulator); nests the per-pass spans under it.
		defer tel.TraceSpan("func/" + f.Name)()
	}
	pipe := opts.Pipeline
	if pipe == nil {
		pipe = DefaultPipeline()
	}
	am := newAnalysisManager(mod, f, &opts, resolve, sums)
	inst := instrumentationFor(&opts)
	defer func() {
		if r := recover(); r != nil {
			err = newPanicError(f.Name, inst.active, r)
			tel.FlightRecord("panic", inst.active, f.Name)
			tel.SetActivePass("", "")
		}
	}()
	for i := 0; i < opts.MaxIterations; i++ {
		before := f.NumInstrs()
		for _, p := range pipe.Passes() {
			pst, err := inst.Run(p, f, am)
			st.Add(pst)
			if err != nil {
				return st, err
			}
		}
		if f.NumInstrs() == before {
			break
		}
	}
	// Count remaining scalar alloca slots as assigned registers.
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpAlloca && in.AllocSz <= 8 {
				st.RegsAssigned++
			}
		}
	}
	am.record()
	if aaStats != nil {
		aaStats.Add(am.mgr.Stats)
	}
	return st, nil
}

// ---------- shared utilities ----------

// emitRemark reports one committed transform to the remark stream,
// attaching the unseq-aa attribution accumulated in mgr's current
// query window (bracketed by mgr.ResetWindow before the candidate's
// legality queries). mgr may be nil for passes that never consult AA.
func emitRemark(tel *telemetry.Session, mgr *aa.Manager, pass, kind, fn, loc string) {
	if !tel.RemarksEnabled() {
		return
	}
	var att aa.Attribution
	if mgr != nil {
		att = mgr.Window()
	}
	tel.Remark(telemetry.Remark{
		Pass: pass, Function: fn, Loc: loc, Kind: kind,
		EnabledByUnseqAA: att.UnseqDecided, PredicateMeta: att.PredicateMeta,
	})
}

// buildUses computes value -> using instructions.
func buildUses(f *ir.Func) map[ir.Value][]*ir.Instr {
	uses := make(map[ir.Value][]*ir.Instr)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for _, a := range in.Args {
				if a != nil {
					uses[a] = append(uses[a], in)
				}
			}
		}
	}
	return uses
}

// replaceUses rewrites every use of old to new.
func replaceUses(f *ir.Func, old, new ir.Value) {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for i, a := range in.Args {
				if a == old {
					in.Args[i] = new
				}
			}
		}
	}
}

// removeAt deletes b.Instrs[i].
func removeAt(b *ir.Block, i int) {
	b.Instrs = append(b.Instrs[:i], b.Instrs[i+1:]...)
}

// canonicalFor reports whether v already holds the canonical register
// representation a load with (cls, unsigned) would produce — i.e.
// whether the memory round-trip (truncate to the slot width, re-extend
// per the load's signedness) is the identity on v. Constants are folded
// to the canonical value and returned. When it reports false the caller
// must not substitute v for the load directly; it has to replay the
// round-trip with an explicit convert or leave the load in place.
func canonicalFor(v ir.Value, cls ir.Class, unsigned bool) (ir.Value, bool) {
	if cls == ir.I64 || cls == ir.Ptr || cls.IsFloat() {
		return v, true // full-width: the round-trip is always the identity
	}
	switch x := v.(type) {
	case *ir.Const:
		return ir.ConstInt(cls, ir.TruncInt(cls, x.I, unsigned)), true
	case *ir.Instr:
		if x.Cls != cls || x.Unsigned != unsigned {
			return v, false
		}
		// Only ops that truncate their result per (Cls, Unsigned) at
		// runtime are guaranteed canonical; calls, selects, and vector
		// ops pass values through untouched.
		switch x.Op {
		case ir.OpLoad, ir.OpConvert, ir.OpAdd, ir.OpSub, ir.OpMul,
			ir.OpDiv, ir.OpRem, ir.OpAnd, ir.OpOr, ir.OpXor,
			ir.OpShl, ir.OpShr, ir.OpNeg, ir.OpNot, ir.OpCmp:
			return v, true
		}
	}
	return v, false
}

// isPureValueOp reports whether in computes a value without touching
// memory or control flow.
func isPureValueOp(in *ir.Instr) bool {
	switch in.Op {
	case ir.OpGEP, ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr,
		ir.OpXor, ir.OpShl, ir.OpShr, ir.OpNeg, ir.OpNot, ir.OpCmp,
		ir.OpSelect, ir.OpConvert, ir.OpVecSplat:
		return true
	case ir.OpDiv, ir.OpRem:
		// Division by a non-zero constant is speculatable.
		if c, ok := in.Args[1].(*ir.Const); ok && (c.I != 0 || c.Cls.IsFloat()) {
			return true
		}
		return false
	}
	return false
}

// callReadsMemory / callWritesMemory consult readnone summaries.
func callEffects(mod *ir.Module, in *ir.Instr) (reads, writes bool) {
	if in.Op != ir.OpCall {
		return in.IsMemRead(), in.IsMemWrite()
	}
	if in.Callee != "" {
		if f := mod.FindFunc(in.Callee); f != nil && f.ReadNone {
			return false, false
		}
		if pureBuiltin(in.Callee) {
			return false, false
		}
	}
	return true, true
}

// callModRef reports whether the call may read and/or write the given
// location. The coarse per-module effects (ReadNone flag, pure
// builtins) answer first; otherwise, when interprocedural summaries
// are loaded, the callee's bottom-up mod/ref summary is resolved
// against the call's actual arguments. An unknown call without a
// summary stays a full read+write barrier.
func callModRef(mod *ir.Module, mgr *aa.Manager, call *ir.Instr, loc aa.Location) (reads, writes bool) {
	r, w := callEffects(mod, call)
	if (!r && !w) || mgr == nil || !mgr.HasSummaries() || loc.Ptr == nil {
		return r, w
	}
	eff := mgr.CallModRef(call, loc)
	return eff&aa.RefEffect != 0, eff&aa.ModEffect != 0
}

func pureBuiltin(name string) bool {
	switch name {
	case "fabs", "sqrt", "sin", "cos", "exp", "log", "pow", "floor",
		"ceil", "fmod", "fmax", "fmin", "abs", "labs":
		return true
	}
	return false
}

// accessSize returns the byte size of a load/store access.
func accessSize(in *ir.Instr) int {
	switch in.Op {
	case ir.OpLoad:
		return in.Cls.Size()
	case ir.OpStore:
		return in.Args[1].Class().Size()
	case ir.OpVecLoad:
		return in.Cls.Size() * in.Width
	case ir.OpVecStore:
		return in.Cls.Size() * in.Width
	}
	return 8
}

// memLoc extracts the accessed location of a memory instruction (nil
// pointer if not a simple access).
func memLoc(in *ir.Instr) (ir.Value, int) {
	switch in.Op {
	case ir.OpLoad, ir.OpVecLoad:
		return in.Args[0], accessSize(in)
	case ir.OpStore, ir.OpVecStore:
		return in.Args[0], accessSize(in)
	case ir.OpMemset, ir.OpMemcpy:
		return in.Args[0], 1 << 20 // unknown extent: huge
	}
	return nil, 0
}

// accessClass returns the scalar class of a load/store for TBAA.
func accessClass(in *ir.Instr) ir.Class {
	switch in.Op {
	case ir.OpLoad, ir.OpVecLoad:
		return in.Cls
	case ir.OpStore:
		return in.Args[1].Class()
	case ir.OpVecStore:
		return in.Cls
	}
	return ir.Void
}

// locOf builds the AA location of a memory instruction.
func locOf(in *ir.Instr) aa.Location {
	ptr, size := memLoc(in)
	return aa.Location{Ptr: ptr, Size: size, Cls: accessClass(in)}
}
