package passes

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/irgen"
	"repro/internal/ooe"
	"repro/internal/parser"
	"repro/internal/sema"
)

// panicPass blows up on matching functions — the injected fault the
// crash-recovery machinery must contain to one function.
type panicPass struct{ prefix string }

func (panicPass) Name() string { return "panicpass" }
func (p panicPass) Run(f *ir.Func, am *AnalysisManager) (Stats, Preserved) {
	if strings.HasPrefix(f.Name, p.prefix) {
		panic("injected failure in " + f.Name)
	}
	return Stats{}, PreserveNone
}

// buildModule lowers src to IR without running the pipeline.
func buildModule(t *testing.T, src string) *ir.Module {
	t.Helper()
	tu, perrs := parser.ParseFile("t.c", src, nil)
	for _, e := range perrs {
		t.Fatalf("parse: %v", e)
	}
	for _, e := range sema.Check(tu) {
		t.Fatalf("sema: %v", e)
	}
	an := ooe.New(ooe.Config{}, ooe.FuncMap(tu))
	mod, errs := irgen.Generate(tu, an.AnalyzeUnit(tu), irgen.Options{EmitPredicates: true})
	for _, e := range errs {
		t.Fatalf("irgen: %v", e)
	}
	return mod
}

const recoverSrc = `
int aa_first(int x) { return x + 1; }
int boom_mid(int x) { return x * 2; }
int zz_last(int x) { return x - 3; }
int main() { return aa_first(1) + boom_mid(2) + zz_last(3); }
`

// withPanicPass appends the injected pass to the default pipeline.
func withPanicPass(prefix string, jobs int) Options {
	opts := DefaultOptions()
	opts.Pipeline = NewPipeline(append(DefaultPipeline().Passes(), panicPass{prefix: prefix})...)
	opts.Jobs = jobs
	return opts
}

func TestPassPanicRecoveredWithAttribution(t *testing.T) {
	for _, jobs := range []int{1, 4} {
		mod := buildModule(t, recoverSrc)
		_, err := RunModule(mod, withPanicPass("boom_", jobs), nil)
		if err == nil {
			t.Fatalf("jobs=%d: panic in pass was swallowed", jobs)
		}
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("jobs=%d: error is %T, want *PanicError: %v", jobs, err, err)
		}
		if pe.Func != "boom_mid" || pe.PassName() != "panicpass" {
			t.Fatalf("jobs=%d: attribution = (func %q, pass %q), want (boom_mid, panicpass)",
				jobs, pe.Func, pe.PassName())
		}
		if !strings.Contains(pe.Error(), "internal compiler error") {
			t.Fatalf("jobs=%d: error text %q lacks ICE marker", jobs, pe.Error())
		}
		if len(pe.Stack) == 0 {
			t.Fatalf("jobs=%d: PanicError carries no stack", jobs)
		}
		// The panic must not strand the siblings: every other function
		// still went through the pipeline and left verifiable IR.
		if problems := mod.Verify(); len(problems) > 0 {
			t.Fatalf("jobs=%d: sibling functions left broken IR: %v", jobs, problems[0])
		}
	}
}

// Multiple failures aggregate in source order, identically at -j 1 and
// -j N — a panic report must not depend on scheduling.
func TestPassPanicErrorsSourceOrdered(t *testing.T) {
	src := `
int boom_a(int x) { return x + 1; }
int keep(int x) { return x * 2; }
int boom_b(int x) { return x - 3; }
int main() { return boom_a(1) + keep(2) + boom_b(3); }
`
	var texts []string
	for _, jobs := range []int{1, 4} {
		mod := buildModule(t, src)
		_, err := RunModule(mod, withPanicPass("boom_", jobs), nil)
		if err == nil {
			t.Fatalf("jobs=%d: panics swallowed", jobs)
		}
		msg := err.Error()
		ia, ib := strings.Index(msg, "boom_a"), strings.Index(msg, "boom_b")
		if ia < 0 || ib < 0 || ia > ib {
			t.Fatalf("jobs=%d: errors not in source order:\n%s", jobs, msg)
		}
		texts = append(texts, msg)
	}
	// Stacks differ across runs; compare with them stripped.
	norm := func(s string) string {
		var keep []string
		for _, ln := range strings.Split(s, "\n") {
			if strings.Contains(ln, "internal compiler error") {
				keep = append(keep, ln)
			}
		}
		return strings.Join(keep, "\n")
	}
	if norm(texts[0]) != norm(texts[1]) {
		t.Fatalf("-j 1 and -j 4 report different failures:\n-- j1 --\n%s\n-- j4 --\n%s",
			norm(texts[0]), norm(texts[1]))
	}
}

func TestPanicErrorBetweenPasses(t *testing.T) {
	pe := newPanicError("f", "", "boom")
	if pe.PassName() != "<between passes>" {
		t.Fatalf("PassName() = %q, want <between passes>", pe.PassName())
	}
}
