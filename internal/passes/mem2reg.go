package passes

import (
	"repro/internal/ir"
)

// mem2reg promotes the simplest alloca pattern to a direct SSA value:
// a scalar slot with exactly one store, located in the entry block before
// every load. This covers parameter spills (store %param at entry) and
// once-initialized locals — and, importantly for unseq-aa, it makes every
// use of such a pointer the *same IR value*, so a mustnotalias fact
// recorded at an annotation site applies verbatim to the loop accesses.
//
// Allocas referenced by ubcheck instructions are left alone (the
// sanitizer needs real addresses); mustnotalias intrinsics over a
// promoted slot become meaningless and are deleted.
//
// The use map comes from the analysis manager and is rebuilt once per
// round, not once per promotion: every eligible alloca in a round is
// promoted against the same map, and the dead instructions of the whole
// round are swept from the blocks in a single filter pass. Staleness
// within a round is benign — a promotion retires its own
// alloca/store/loads (which no other alloca's use list references,
// since a load or store of slot C appears only in uses[C] and uses[its
// value operand]) plus shared mustnotalias intrinsics (retiring an
// already-retired instruction is a no-op), and any alloca whose address
// flowed into a retired instruction was already rejected by the escape
// check (the use list still carries the instruction), so it just
// retries next round against a fresh map. The final round makes no
// changes, leaving the cached map exact — which is why the pass can
// preserve AnalysisUses.
func mem2reg(f *ir.Func, am *AnalysisManager) int {
	promoted := 0
	entry := f.Entry()
	if entry == nil {
		return 0
	}
	for {
		uses := am.Uses()
		del := map[*ir.Instr]bool{}
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op != ir.OpAlloca || in.AllocSz > 8 || del[in] {
					continue
				}
				var store *ir.Instr
				var loads []*ir.Instr
				var deadIntrinsics []*ir.Instr
				ok := true
				for _, u := range uses[in] {
					switch {
					case u.Op == ir.OpStore && u.Args[0] == in && u.Args[1] != in:
						if store != nil {
							ok = false
						}
						store = u
					case u.Op == ir.OpLoad && u.Args[0] == in:
						loads = append(loads, u)
					case u.Op == ir.OpMustNotAlias:
						deadIntrinsics = append(deadIntrinsics, u)
					default:
						ok = false // address escapes / ubcheck / gep
					}
					if !ok {
						break
					}
				}
				if !ok || store == nil || store.Block() != entry {
					continue
				}
				// Every entry-block load must come after the store.
				storeIdx := indexIn(entry, store)
				for _, ld := range loads {
					if ld.Block() == entry && indexIn(entry, ld) < storeIdx {
						ok = false
						break
					}
					if ld.Cls != store.Args[1].Class() {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				v := store.Args[1]
				del[in] = true
				del[store] = true
				for _, ld := range loads {
					// The slot truncates the stored value to the load width
					// and the load re-extends it per its signedness; when v's
					// canonical form differs, the load becomes the convert
					// that replays that round-trip instead of vanishing.
					if cv, exact := canonicalFor(v, ld.Cls, ld.Unsigned); exact {
						replaceUses(f, ld, cv)
						del[ld] = true
					} else {
						ld.Op = ir.OpConvert
						ld.Args = []ir.Value{v}
					}
				}
				for _, mi := range deadIntrinsics {
					del[mi] = true
				}
				promoted++
			}
		}
		if len(del) == 0 {
			break
		}
		for _, bb := range f.Blocks {
			var out []*ir.Instr
			for _, x := range bb.Instrs {
				if !del[x] {
					out = append(out, x)
				}
			}
			bb.Instrs = out
		}
		am.InvalidateUses()
	}
	return promoted
}

func indexIn(b *ir.Block, target *ir.Instr) int {
	for i, in := range b.Instrs {
		if in == target {
			return i
		}
	}
	return -1
}
