package passes

import (
	"repro/internal/ir"
)

// mem2reg promotes the simplest alloca pattern to a direct SSA value:
// a scalar slot with exactly one store, located in the entry block before
// every load. This covers parameter spills (store %param at entry) and
// once-initialized locals — and, importantly for unseq-aa, it makes every
// use of such a pointer the *same IR value*, so a mustnotalias fact
// recorded at an annotation site applies verbatim to the loop accesses.
//
// Allocas referenced by ubcheck instructions are left alone (the
// sanitizer needs real addresses); mustnotalias intrinsics over a
// promoted slot become meaningless and are deleted.
func mem2reg(f *ir.Func) int {
	promoted := 0
	entry := f.Entry()
	if entry == nil {
		return 0
	}
	for {
		uses := buildUses(f)
		changed := false
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op != ir.OpAlloca || in.AllocSz > 8 {
					continue
				}
				var store *ir.Instr
				var loads []*ir.Instr
				var deadIntrinsics []*ir.Instr
				ok := true
				for _, u := range uses[in] {
					switch {
					case u.Op == ir.OpStore && u.Args[0] == in && u.Args[1] != in:
						if store != nil {
							ok = false
						}
						store = u
					case u.Op == ir.OpLoad && u.Args[0] == in:
						loads = append(loads, u)
					case u.Op == ir.OpMustNotAlias:
						deadIntrinsics = append(deadIntrinsics, u)
					default:
						ok = false // address escapes / ubcheck / gep
					}
					if !ok {
						break
					}
				}
				if !ok || store == nil || store.Block() != entry {
					continue
				}
				// Every entry-block load must come after the store.
				storeIdx := indexIn(entry, store)
				for _, ld := range loads {
					if ld.Block() == entry && indexIn(entry, ld) < storeIdx {
						ok = false
						break
					}
					if ld.Cls != store.Args[1].Class() {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				v := store.Args[1]
				del := map[*ir.Instr]bool{in: true, store: true}
				for _, ld := range loads {
					// The slot truncates the stored value to the load width
					// and the load re-extends it per its signedness; when v's
					// canonical form differs, the load becomes the convert
					// that replays that round-trip instead of vanishing.
					if cv, exact := canonicalFor(v, ld.Cls, ld.Unsigned); exact {
						replaceUses(f, ld, cv)
						del[ld] = true
					} else {
						ld.Op = ir.OpConvert
						ld.Args = []ir.Value{v}
					}
				}
				for _, mi := range deadIntrinsics {
					del[mi] = true
				}
				for _, bb := range f.Blocks {
					var out []*ir.Instr
					for _, x := range bb.Instrs {
						if !del[x] {
							out = append(out, x)
						}
					}
					bb.Instrs = out
				}
				promoted++
				changed = true
			}
			if changed {
				break
			}
		}
		if !changed {
			break
		}
	}
	return promoted
}

func indexIn(b *ir.Block, target *ir.Instr) int {
	for i, in := range b.Instrs {
		if in == target {
			return i
		}
	}
	return -1
}
