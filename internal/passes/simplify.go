package passes

import (
	"repro/internal/ir"
)

// simplifyCFG removes unreachable blocks, folds constant conditional
// branches, forms selects from store diamonds (if-conversion — what lets
// the ternary bodies of minmax and MagickMax become vectorizable
// straight-line code), and merges straight-line block chains.
func simplifyCFG(f *ir.Func) int {
	changed := 0
	changed += formSelects(f)
	// Fold constant condbrs.
	for _, b := range f.Blocks {
		t := b.Terminator()
		if t == nil || t.Op != ir.OpCondBr {
			continue
		}
		if c, ok := t.Args[0].(*ir.Const); ok && !c.Cls.IsFloat() {
			target := t.Else
			if c.I != 0 {
				target = t.Then
			}
			t.Op = ir.OpBr
			t.Args = nil
			t.Target = target
			t.Then, t.Else = nil, nil
			changed++
		} else if t.Then == t.Else {
			t.Op = ir.OpBr
			t.Args = nil
			t.Target = t.Then
			t.Then, t.Else = nil, nil
			changed++
		}
	}
	// Remove unreachable blocks.
	reach := map[*ir.Block]bool{}
	var stack []*ir.Block
	if e := f.Entry(); e != nil {
		reach[e] = true
		stack = append(stack, e)
	}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs() {
			if !reach[s] {
				reach[s] = true
				stack = append(stack, s)
			}
		}
	}
	var kept []*ir.Block
	for _, b := range f.Blocks {
		if reach[b] {
			kept = append(kept, b)
		} else {
			changed++
		}
	}
	f.Blocks = kept

	// Merge b -> s when b ends in an unconditional br to s and s has b as
	// its only predecessor (and s is not the entry).
	for {
		merged := false
		preds := f.Preds()
		for _, b := range f.Blocks {
			t := b.Terminator()
			if t == nil || t.Op != ir.OpBr {
				continue
			}
			s := t.Target
			if s == f.Entry() || s == b || len(preds[s]) != 1 {
				continue
			}
			// Merge s into b.
			b.Instrs = b.Instrs[:len(b.Instrs)-1] // drop the br
			b.Instrs = append(b.Instrs, s.Instrs...)
			for _, in := range s.Instrs {
				setBlock(in, b)
			}
			s.Instrs = nil
			// Remove s from the block list.
			var kept2 []*ir.Block
			for _, x := range f.Blocks {
				if x != s {
					kept2 = append(kept2, x)
				}
			}
			f.Blocks = kept2
			changed++
			merged = true
			break
		}
		if !merged {
			break
		}
	}
	return changed
}

// formSelects converts store diamonds into selects:
//
//	A: condbr c, T, E
//	T: [speculatable], store p, v1; br J
//	E: [speculatable], store p, v2; br J
//
// becomes A: [T's and E's instrs], sel = select(c, v1, v2), store p, sel,
// br J — provided T and E are single-predecessor and contain only
// speculatable instructions plus one trailing store to the same pointer.
func formSelects(f *ir.Func) int {
	formed := 0
	for {
		preds := f.Preds()
		done := true
		for _, a := range f.Blocks {
			t := a.Terminator()
			if t == nil || t.Op != ir.OpCondBr || t.Then == t.Else {
				continue
			}
			tb, eb := t.Then, t.Else
			if len(preds[tb]) != 1 || len(preds[eb]) != 1 {
				continue
			}
			ts, tok := diamondArm(tb)
			es, eok := diamondArm(eb)
			if !tok || !eok {
				continue
			}
			if ts.store.Args[0] != es.store.Args[0] {
				continue
			}
			jt, je := tb.Terminator().Target, eb.Terminator().Target
			if jt != je {
				continue
			}
			cls := ts.store.Args[1].Class()
			if es.store.Args[1].Class() != cls {
				continue
			}
			// Splice: remove A's condbr, inline both arms' pure instrs,
			// add select + store + br J.
			cond := t.Args[0]
			a.Instrs = a.Instrs[:len(a.Instrs)-1]
			for _, in := range ts.pure {
				ir.SetBlock(in, a)
				a.Instrs = append(a.Instrs, in)
			}
			for _, in := range es.pure {
				ir.SetBlock(in, a)
				a.Instrs = append(a.Instrs, in)
			}
			sel := &ir.Instr{Op: ir.OpSelect, Cls: cls,
				Args: []ir.Value{cond, ts.store.Args[1], es.store.Args[1]}, Span: ts.store.Span}
			a.Append(sel)
			st := &ir.Instr{Op: ir.OpStore, Cls: ir.Void, Args: []ir.Value{ts.store.Args[0], sel}, Span: ts.store.Span}
			a.Append(st)
			a.Append(&ir.Instr{Op: ir.OpBr, Cls: ir.Void, Target: jt, Span: ts.store.Span})
			tb.Instrs = nil
			eb.Instrs = nil
			formed++
			done = false
			break
		}
		if done {
			break
		}
		// Clean the emptied arm blocks.
		var kept []*ir.Block
		for _, b := range f.Blocks {
			if len(b.Instrs) > 0 || b == f.Entry() {
				kept = append(kept, b)
			}
		}
		f.Blocks = kept
	}
	return formed
}

type armShape struct {
	pure  []*ir.Instr
	store *ir.Instr
}

// diamondArm matches a block of speculatable instructions followed by one
// store and a br.
func diamondArm(b *ir.Block) (armShape, bool) {
	var s armShape
	n := len(b.Instrs)
	if n < 2 {
		return s, false
	}
	term := b.Instrs[n-1]
	if term.Op != ir.OpBr {
		return s, false
	}
	st := b.Instrs[n-2]
	if st.Op != ir.OpStore || st.Volatile {
		return s, false
	}
	for _, in := range b.Instrs[:n-2] {
		if !isPureValueOp(in) {
			// Speculating a pure builtin call is fine, and so is a
			// non-volatile load: the execution model cannot fault on a
			// read (LLVM needs dereferenceability here; our substrate
			// guarantees it).
			if in.Op == ir.OpCall && pureBuiltin(in.Callee) {
				s.pure = append(s.pure, in)
				continue
			}
			if in.Op == ir.OpLoad && !in.Volatile {
				s.pure = append(s.pure, in)
				continue
			}
			return s, false
		}
		s.pure = append(s.pure, in)
	}
	s.store = st
	return s, true
}

// setBlock updates an instruction's block backlink after a merge.
func setBlock(in *ir.Instr, b *ir.Block) {
	// The blk field is unexported; re-appending is how external packages
	// would do it, but within the ir package boundary we provide a
	// helper.
	ir.SetBlock(in, b)
}

// dce deletes value-producing instructions with no uses and no side
// effects. mustnotalias intrinsics do not keep their operands alive (the
// paper wraps them in metadata for exactly this reason); an intrinsic
// whose operand would otherwise be dead is deleted along with it.
func dce(f *ir.Func) int {
	removed := 0
	for {
		uses := map[ir.Value]int{}
		// storeOnly tracks allocas used exclusively as store targets:
		// both the stores and the slot are dead.
		storeOnly := map[ir.Value]bool{}
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpAlloca {
					storeOnly[in] = true
				}
			}
		}
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpMustNotAlias {
					continue // metadata: not a real use
				}
				for ai, a := range in.Args {
					uses[a]++
					if _, isAl := storeOnly[a]; isAl {
						if !(in.Op == ir.OpStore && ai == 0) {
							delete(storeOnly, a)
						}
					}
				}
			}
		}
		changed := false
		for _, b := range f.Blocks {
			for i := 0; i < len(b.Instrs); i++ {
				in := b.Instrs[i]
				dead := false
				switch {
				case isPureValueOp(in) && uses[in] == 0:
					dead = true
				case in.Op == ir.OpLoad && !in.Volatile && uses[in] == 0:
					dead = true
				case in.Op == ir.OpAlloca && uses[in] == 0:
					dead = true
				case in.Op == ir.OpStore && !in.Volatile && storeOnly[in.Args[0]]:
					dead = true
				case in.Op == ir.OpAlloca && storeOnly[in] && uses[in] > 0:
					// Deleted together with its stores on the next round.
				case in.Op == ir.OpVecLoad && uses[in] == 0:
					dead = true
				case in.Op == ir.OpMustNotAlias:
					// Remove intrinsics whose operands are gone from the
					// computation (only referenced by intrinsics).
					a0, ok0 := in.Args[0].(*ir.Instr)
					a1, ok1 := in.Args[1].(*ir.Instr)
					if (ok0 && uses[a0] == 0 && !reachableInstr(f, a0)) ||
						(ok1 && uses[a1] == 0 && !reachableInstr(f, a1)) {
						dead = true
					}
				}
				if dead {
					removeAt(b, i)
					i--
					removed++
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return removed
}

// reachableInstr reports whether the instruction is still present in the
// function body.
func reachableInstr(f *ir.Func, target *ir.Instr) bool {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in == target {
				return true
			}
		}
	}
	return false
}
