package passes

import (
	"repro/internal/aa"
	"repro/internal/ir"
)

// vectorizeLoopsOpt widens canonical innermost loops by W lanes.
//
// Legality model (a simplified LoopAccessAnalysis):
//
//   - unit-stride loads/stores indexed by the primary or a secondary
//     induction variable become vector memory ops;
//   - induction values used as data become iota vectors;
//   - register-class alloca accesses form reductions (acc = acc ⊕ x) or
//     secondary inductions (i = i + 1);
//   - loads through loop-invariant pointers are uniform scalars;
//   - every store stream must be provably independent from every other
//     access: whole-object disjointness is free; a value-keyed NoAlias
//     answer (what unseq-aa contributes) costs a runtime range guard that
//     does NOT count against the memcheck budget; a MayAlias pair costs a
//     guard that DOES count. When the budget (Options.MemcheckThreshold,
//     default 0 — mirroring a baseline that deems versioning
//     unprofitable) is exceeded, the loop is not vectorized.
//
// This is where the paper's extra NoAlias answers bite: they convert
// budget-consuming MayAlias checks into free ones, which is exactly the
// "LoopVectorize uses the extra aliasing information in its cost
// calculation" mechanism described for gcc's regmove.c.
func vectorizeLoopsOpt(f *ir.Func, am *AnalysisManager, width, memcheckBudget int) int {
	if width < 2 {
		return 0
	}
	mgr := am.AA()
	tel := am.Telemetry()
	loops := am.Loops()
	count := 0
	for _, l := range loops {
		if !l.IsInnermost(loops) {
			continue
		}
		cl, ok := recognize(f, l)
		if !ok || loopAlreadyTransformed(cl) {
			continue
		}
		if hasVectorOps(cl.body) {
			continue
		}
		// Attribution window for this loop's dependence queries.
		mgr.ResetWindow()
		plan, ok := planVectorization(f, cl, mgr, am.Uses(), width, memcheckBudget)
		if !ok {
			continue
		}
		emitVectorLoop(f, cl, plan, width)
		am.InvalidateUses()
		count++
		emitRemark(tel, mgr, "vectorize", "LoopVectorized", f.Name, cl.header.Name)
	}
	return count
}

// stream describes one unit-stride memory access in the body.
type stream struct {
	instr *ir.Instr // the load or store
	gep   *ir.Instr // address computation
	base  ir.Value  // invariant base pointer
}

// reduction describes acc = acc ⊕ x on a register-class alloca.
type reduction struct {
	alloca  *ir.Instr
	loadIn  *ir.Instr // load acc inside body
	combine *ir.Instr // the ⊕ instruction
	store   *ir.Instr // store acc
	op      ir.Op
}

// secIV is a secondary induction variable: a register slot incremented by
// exactly 1 each iteration (imagick's `u++, i++` pattern).
type secIV struct {
	alloca   *ir.Instr
	incStore *ir.Instr
	incAdd   *ir.Instr
	loadIn   *ir.Instr // the load feeding the increment
}

// memReduction is acc ⊕= x where acc lives behind a loop-invariant
// pointer (imagick's kernel->positive_range). LLVM calls this an
// invariant-address reduction; it demands static independence from every
// stream (no budget-consuming checks), which is exactly where the
// paper's posrange-vs-values[i] fact becomes decisive.
type memReduction struct {
	ptr     ir.Value
	loadIn  *ir.Instr
	combine *ir.Instr
	store   *ir.Instr
	op      ir.Op
}

type vecPlan struct {
	loads      []stream
	stores     []stream
	reductions []reduction
	secIVs     []secIV
	memReds    []memReduction
	// uniformLoads are loads of never-stored alloca slots or of
	// loop-invariant pointers: the same (or unconditionally reloadable)
	// scalar every iteration.
	uniformLoads []*ir.Instr
	// guards are runtime range-disjointness checks: [ptrA, ptrB] base
	// values with the element scale per pair.
	guards [][2]ir.Value
	scales []int
	// pointGuards check a single location against a stream range:
	// [loc, streamBase].
	pointGuards [][2]ir.Value
	pointScales []int
}

// ivLoadKind classifies a load as primary IV, a secondary IV, or neither.
func (p *vecPlan) secOf(alloca ir.Value) *secIV {
	for i := range p.secIVs {
		if p.secIVs[i].alloca == alloca {
			return &p.secIVs[i]
		}
	}
	return nil
}

// isIndVarLoad reports whether v loads the primary or a secondary IV,
// possibly through a Convert.
func isIndVarLoad(cl *canonLoop, plan *vecPlan, v ir.Value) bool {
	in, ok := v.(*ir.Instr)
	if !ok {
		return false
	}
	if in.Op == ir.OpConvert {
		in, ok = in.Args[0].(*ir.Instr)
		if !ok {
			return false
		}
	}
	if in.Op != ir.OpLoad {
		return false
	}
	if in.Args[0] == cl.ivAlloca {
		return true
	}
	return plan.secOf(in.Args[0]) != nil
}

// planVectorization checks legality and collects the transformation
// plan. uses is the function's use map (from the analysis manager; the
// caller invalidates it after each emitVectorLoop mutation).
func planVectorization(f *ir.Func, cl *canonLoop, mgr *aa.Manager, uses map[ir.Value][]*ir.Instr, width, budget int) (*vecPlan, bool) {
	plan := &vecPlan{}
	l := cl.l

	// Pass 1: find secondary IVs and reductions among alloca stores, and
	// invariant-address memory reductions.
	for _, in := range cl.body.Instrs {
		if in.Op != ir.OpStore {
			continue
		}
		al, ok := in.Args[0].(*ir.Instr)
		if !ok || al.Op != ir.OpAlloca || al.AllocSz > 8 {
			// Invariant non-alloca pointer read-modify-write?
			ptr := in.Args[0]
			if !definedInLoop(l, ptr) {
				if mr, ok := matchMemReduction(ptr, in); ok {
					plan.memReds = append(plan.memReds, mr)
				}
			}
			continue
		}
		if al == cl.ivAlloca {
			continue
		}
		// i = i + 1 → secondary IV.
		if add, ok := in.Args[1].(*ir.Instr); ok && add.Op == ir.OpAdd {
			if one, ok := add.Args[1].(*ir.Const); ok && !one.Cls.IsFloat() && one.I == 1 {
				if ld, ok := add.Args[0].(*ir.Instr); ok && ld.Op == ir.OpLoad && ld.Args[0] == al {
					plan.secIVs = append(plan.secIVs, secIV{alloca: al, incStore: in, incAdd: add, loadIn: ld})
					continue
				}
			}
		}
		red, ok := matchReduction(cl, al, in)
		if !ok {
			return nil, false
		}
		plan.reductions = append(plan.reductions, red)
	}
	// A slot can be only one of secondary IV / reduction, stored once.
	seen := map[*ir.Instr]int{}
	for _, s := range plan.secIVs {
		seen[s.alloca]++
	}
	for _, r := range plan.reductions {
		seen[r.alloca]++
	}
	for _, n := range seen {
		if n > 1 {
			return nil, false
		}
	}

	memRedLoads := map[*ir.Instr]bool{}
	memRedStores := map[*ir.Instr]bool{}
	memRedPtrs := map[ir.Value]int{}
	for _, mr := range plan.memReds {
		memRedLoads[mr.loadIn] = true
		memRedStores[mr.store] = true
		memRedPtrs[mr.ptr]++
	}
	for _, n := range memRedPtrs {
		if n > 1 {
			return nil, false // two reductions on one location
		}
	}

	// Pass 2: classify memory accesses.
	var allocaLoads []*ir.Instr
	for _, in := range cl.body.Instrs {
		switch in.Op {
		case ir.OpLoad:
			if in.Args[0] == cl.ivAlloca {
				continue
			}
			if memRedLoads[in] {
				continue
			}
			if _, isRedPtr := memRedPtrs[in.Args[0]]; isRedPtr {
				return nil, false // extra read of a reduction location
			}
			if al, ok := in.Args[0].(*ir.Instr); ok && al.Op == ir.OpAlloca && al.AllocSz <= 8 {
				allocaLoads = append(allocaLoads, in)
				continue
			}
			if gep, ok := in.Args[0].(*ir.Instr); ok && gep.Op == ir.OpGEP &&
				gep.Scale == in.Cls.Size() && isIndVarLoad(cl, plan, gep.Args[1]) &&
				!definedInLoop(l, gep.Args[0]) {
				plan.loads = append(plan.loads, stream{instr: in, gep: gep, base: gep.Args[0]})
				continue
			}
			if !definedInLoop(l, in.Args[0]) {
				// Uniform load through an invariant pointer (e.g.
				// args->sigma); needs a guard against each store stream.
				plan.uniformLoads = append(plan.uniformLoads, in)
				continue
			}
			return nil, false
		case ir.OpStore:
			if in.Args[0] == cl.ivAlloca {
				continue
			}
			if memRedStores[in] {
				continue
			}
			if al, ok := in.Args[0].(*ir.Instr); ok && al.Op == ir.OpAlloca && al.AllocSz <= 8 {
				continue // classified in pass 1
			}
			gep, okG := in.Args[0].(*ir.Instr)
			if !okG || gep.Op != ir.OpGEP || gep.Scale != in.Args[1].Class().Size() ||
				!isIndVarLoad(cl, plan, gep.Args[1]) || definedInLoop(l, gep.Args[0]) {
				return nil, false
			}
			plan.stores = append(plan.stores, stream{instr: in, gep: gep, base: gep.Args[0]})
		case ir.OpCall:
			if pureBuiltin(in.Callee) {
				continue
			}
			// A callee whose interprocedural summary proves it touches
			// no memory is as good as a pure builtin — but it has no
			// vector form, so it is only admissible with loop-invariant
			// arguments (the transform clones it as one uniform scalar
			// call per vector iteration).
			if !mgr.CallReadNone(in) {
				return nil, false
			}
			for _, a := range in.Args {
				if definedInLoop(l, a) {
					return nil, false
				}
			}
		case ir.OpVecLoad, ir.OpVecStore, ir.OpMemset, ir.OpMemcpy, ir.OpUBCheck:
			return nil, false
		case ir.OpMustNotAlias, ir.OpBr:
			// fine
		default:
			if !isPureValueOp(in) {
				return nil, false
			}
		}
	}
	if len(plan.stores) == 0 && len(plan.reductions) == 0 && len(plan.memReds) == 0 {
		return nil, false // nothing to gain
	}

	// Alloca-slot loads must belong to a reduction, a secondary IV, or a
	// never-stored slot (uniform).
	redLoads := map[*ir.Instr]bool{}
	secLoads := map[*ir.Instr]bool{}
	storedAllocas := map[ir.Value]bool{}
	for _, red := range plan.reductions {
		redLoads[red.loadIn] = true
		storedAllocas[red.alloca] = true
	}
	for _, s := range plan.secIVs {
		secLoads[s.loadIn] = true
		storedAllocas[s.alloca] = true
	}
	for _, in := range cl.body.Instrs {
		if in.Op == ir.OpStore {
			storedAllocas[in.Args[0]] = true
		}
	}
	for _, ld := range allocaLoads {
		if redLoads[ld] {
			continue
		}
		if storedAllocas[ld.Args[0]] {
			// Loads of IV slots are fine (mapped to iota vectors); any
			// other stored slot is an unsupported loop-carried scalar.
			if plan.secOf(ld.Args[0]) == nil {
				return nil, false
			}
			continue
		}
		plan.uniformLoads = append(plan.uniformLoads, ld)
	}

	// Reduction inputs must not feed anything but the reduction, and the
	// reduction value must not be used as data elsewhere (its in-loop
	// value is a vector partial sum, not the scalar running total).
	for _, red := range plan.reductions {
		for _, u := range uses[red.loadIn] {
			if u != red.combine {
				return nil, false
			}
		}
		for _, u := range uses[red.combine] {
			if u != red.store {
				return nil, false
			}
		}
	}
	// Secondary IV increments must feed only their store.
	for _, s := range plan.secIVs {
		for _, u := range uses[s.incAdd] {
			if u != s.incStore {
				return nil, false
			}
		}
	}
	// Memory-reduction chains must stay private.
	for _, mr := range plan.memReds {
		for _, u := range uses[mr.loadIn] {
			if u != mr.combine {
				return nil, false
			}
		}
		for _, u := range uses[mr.combine] {
			if u != mr.store {
				return nil, false
			}
		}
	}
	// The primary increment may be CSE-shared only with address/data uses
	// — but its widened form feeds data incorrectly, so require it to
	// feed only its store (the iota path covers `i + 1` as data via a
	// separate instruction after CSE split... in practice CSE merges
	// them, so reject the shared case).
	for _, u := range uses[cl.incAdd] {
		if u != cl.incStore {
			return nil, false
		}
	}

	// Dependence checks with the guard budget. The budget is only
	// granted when unseq-aa resolved at least one pair — the paper's
	// "extra aliasing information in the cost calculation": without
	// facts, runtime versioning is judged unprofitable.
	checksUsed := 0
	factResolved := false
	addGuard := func(a, b ir.Value, scale int, counts bool) bool {
		for i, g := range plan.guards {
			if (g[0] == a && g[1] == b) || (g[0] == b && g[1] == a) {
				_ = i
				return true // already guarded
			}
		}
		if counts {
			checksUsed++
		}
		if len(plan.guards) >= 8 {
			return false // bound preheader code growth
		}
		plan.guards = append(plan.guards, [2]ir.Value{a, b})
		plan.scales = append(plan.scales, scale)
		return true
	}
	// UnseqDecides additionally merges the fact's predicate id into the
	// manager's attribution window, so the LoopVectorized remark can name
	// the π predicate that flipped the cost calculation.
	unseqSaysNo := mgr.UnseqDecides

	allStreams := append(append([]stream{}, plan.loads...), plan.stores...)
	for _, st := range plan.stores {
		for _, other := range allStreams {
			if other.instr == st.instr {
				continue
			}
			if other.gep == st.gep || (other.base == st.base && other.gep.Off == st.gep.Off &&
				other.gep.Scale == st.gep.Scale && other.gep.Args[1] == st.gep.Args[1]) {
				continue // identical stream (a[i] = f(a[i])): same lane
			}
			if other.base == st.base {
				// Same base, different offsets or different index
				// variable: only the statically-safe non-multiple-delta
				// case is allowed.
				d := other.gep.Off - st.gep.Off
				if other.gep.Args[1] == st.gep.Args[1] && other.gep.Scale == st.gep.Scale &&
					d%st.gep.Scale != 0 {
					continue
				}
				return nil, false
			}
			res := mgr.Alias(locOf(st.instr), locOf(other.instr))
			switch {
			case res == aa.NoAlias && wholeObjectsDisjoint(st.base, other.base):
				// Free: disjoint identified objects.
			case res == aa.NoAlias:
				// Value-keyed fact (unseq-aa) or partial proof: needs a
				// range guard but costs no budget.
				if unseqSaysNo(locOf(st.instr), locOf(other.instr)) {
					factResolved = true
				}
				if !addGuard(st.base, other.base, st.gep.Scale, false) {
					return nil, false
				}
			default:
				// MayAlias: a runtime memcheck consuming budget.
				if !addGuard(st.base, other.base, st.gep.Scale, true) {
					return nil, false
				}
			}
		}
		// Uniform loads against this store stream.
		for _, ul := range plan.uniformLoads {
			res := mgr.Alias(aa.Location{Ptr: ul.Args[0], Size: accessSize(ul), Cls: ul.Cls},
				locOf(st.instr))
			if res == aa.NoAlias {
				if unseqSaysNo(aa.Location{Ptr: ul.Args[0], Size: accessSize(ul), Cls: ul.Cls},
					locOf(st.instr)) {
					factResolved = true
				}
				continue // proven: free (single point vs stream)
			}
			// MayAlias: point-vs-range check consuming budget.
			checksUsed++
			if len(plan.pointGuards) >= 8 {
				return nil, false
			}
			plan.pointGuards = append(plan.pointGuards, [2]ir.Value{ul.Args[0], st.base})
			plan.pointScales = append(plan.pointScales, st.gep.Scale)
		}
	}
	// Memory-reduction locations vs every stream (loads included — the
	// reduction's write must not feed any lane's read): LLVM's
	// invariant-address strictness demands a static NoAlias; a
	// value-keyed fact additionally gets a free range guard.
	for _, mr := range plan.memReds {
		mrLoc := aa.Location{Ptr: mr.ptr, Size: accessSize(mr.store), Cls: mr.store.Args[1].Class()}
		for _, other := range allStreams {
			res := mgr.Alias(mrLoc, locOf(other.instr))
			if res != aa.NoAlias {
				return nil, false
			}
			if unseqSaysNo(mrLoc, locOf(other.instr)) {
				factResolved = true
			}
			if len(plan.pointGuards) >= 8 {
				return nil, false
			}
			plan.pointGuards = append(plan.pointGuards, [2]ir.Value{mr.ptr, other.base})
			plan.pointScales = append(plan.pointScales, other.gep.Scale)
		}
	}
	// Memory reductions vs uniform loads and vs each other: single
	// locations, checked with free point comparisons.
	for _, mr := range plan.memReds {
		for _, ul := range plan.uniformLoads {
			if _, isAl := ul.Args[0].(*ir.Instr); isAl &&
				ul.Args[0].(*ir.Instr).Op == ir.OpAlloca {
				continue // register slot cannot alias a real location
			}
			res := mgr.Alias(
				aa.Location{Ptr: mr.ptr, Size: accessSize(mr.store), Cls: mr.store.Args[1].Class()},
				aa.Location{Ptr: ul.Args[0], Size: accessSize(ul), Cls: ul.Cls})
			if res == aa.NoAlias {
				continue
			}
			if len(plan.pointGuards) >= 8 {
				return nil, false
			}
			// Point-point check: scale 0 marks a single-cell range.
			checksUsed++
			plan.pointGuards = append(plan.pointGuards, [2]ir.Value{mr.ptr, ul.Args[0]})
			plan.pointScales = append(plan.pointScales, 0)
		}
	}
	if checksUsed > 0 && (!factResolved || checksUsed > budget) {
		return nil, false
	}
	return plan, true
}

// matchMemReduction matches store(p, op(load p, x)) through an invariant
// pointer.
func matchMemReduction(ptr ir.Value, st *ir.Instr) (memReduction, bool) {
	comb, ok := st.Args[1].(*ir.Instr)
	if !ok || (comb.Op != ir.OpAdd && comb.Op != ir.OpMul) {
		return memReduction{}, false
	}
	var ld *ir.Instr
	if x, ok := comb.Args[0].(*ir.Instr); ok && x.Op == ir.OpLoad && x.Args[0] == ptr {
		ld = x
	} else if x, ok := comb.Args[1].(*ir.Instr); ok && x.Op == ir.OpLoad && x.Args[0] == ptr {
		comb.Args[0], comb.Args[1] = comb.Args[1], comb.Args[0]
		ld = x
	}
	if ld == nil {
		return memReduction{}, false
	}
	return memReduction{ptr: ptr, loadIn: ld, combine: comb, store: st, op: comb.Op}, true
}

func wholeObjectsDisjoint(a, b ir.Value) bool {
	ga, oka := a.(*ir.Global)
	gb, okb := b.(*ir.Global)
	if oka && okb && ga != gb {
		return true
	}
	aal, okaa := a.(*ir.Instr)
	bal, okba := b.(*ir.Instr)
	isAlA := okaa && aal.Op == ir.OpAlloca
	isAlB := okba && bal.Op == ir.OpAlloca
	if isAlA && isAlB && aal != bal {
		return true
	}
	if (oka && isAlB) || (okb && isAlA) {
		return true
	}
	return false
}

// matchReduction matches store(acc, op(load acc, x)) or the commuted
// form, with op ∈ {add, mul} (reassociable; fp reassociation is the
// -ffast-math convention Polybench-style kernels are compiled with).
func matchReduction(cl *canonLoop, acc *ir.Instr, st *ir.Instr) (reduction, bool) {
	comb, ok := st.Args[1].(*ir.Instr)
	if !ok || (comb.Op != ir.OpAdd && comb.Op != ir.OpMul) {
		return reduction{}, false
	}
	var ld *ir.Instr
	if x, ok := comb.Args[0].(*ir.Instr); ok && x.Op == ir.OpLoad && x.Args[0] == acc {
		ld = x
	} else if x, ok := comb.Args[1].(*ir.Instr); ok && x.Op == ir.OpLoad && x.Args[0] == acc {
		comb.Args[0], comb.Args[1] = comb.Args[1], comb.Args[0]
		ld = x
	}
	if ld == nil {
		return reduction{}, false
	}
	return reduction{alloca: acc, loadIn: ld, combine: comb, store: st, op: comb.Op}, true
}

// emitVectorLoop rewrites the loop: preheader guards + vecLimit, a new
// vector header/body, a reduction-merge block, with the original loop as
// scalar remainder/fallback.
func emitVectorLoop(f *ir.Func, cl *canonLoop, plan *vecPlan, width int) {
	pre := cl.l.Preheader
	cls := cl.ivCls
	preMark := len(pre.Instrs)

	iv0, vecLimit := emitBlockCountSplit(pre, cl, width)

	// Range guards (loop versioning). On failure vecLimit collapses to
	// iv0 and the scalar loop runs everything.
	effLimit := cl.limit
	if cl.limitIncl {
		incl := &ir.Instr{Op: ir.OpAdd, Cls: cls, Args: []ir.Value{effLimit, ir.ConstInt(cls, 1)}}
		insertBeforeTerm(pre, incl)
		effLimit = incl
	}
	span := &ir.Instr{Op: ir.OpSub, Cls: cls, Args: []ir.Value{effLimit, iv0}}
	insertBeforeTerm(pre, span)
	span64 := &ir.Instr{Op: ir.OpConvert, Cls: ir.I64, Args: []ir.Value{span}}
	insertBeforeTerm(pre, span64)
	var okAll ir.Value
	andIn := func(c ir.Value) {
		if okAll == nil {
			okAll = c
			return
		}
		and := &ir.Instr{Op: ir.OpAnd, Cls: ir.I32, Args: []ir.Value{okAll, c}}
		insertBeforeTerm(pre, and)
		okAll = and
	}
	for gi, gp := range plan.guards {
		scale := plan.scales[gi]
		ext := &ir.Instr{Op: ir.OpMul, Cls: ir.I64,
			Args: []ir.Value{span64, ir.ConstInt(ir.I64, int64(scale))}}
		insertBeforeTerm(pre, ext)
		aEnd := &ir.Instr{Op: ir.OpAdd, Cls: ir.I64, Args: []ir.Value{gp[0], ext}}
		insertBeforeTerm(pre, aEnd)
		bEnd := &ir.Instr{Op: ir.OpAdd, Cls: ir.I64, Args: []ir.Value{gp[1], ext}}
		insertBeforeTerm(pre, bEnd)
		c1 := &ir.Instr{Op: ir.OpCmp, Cls: ir.I32, Pred: ir.ULe, Unsigned: true,
			Args: []ir.Value{aEnd, gp[1]}}
		insertBeforeTerm(pre, c1)
		c2 := &ir.Instr{Op: ir.OpCmp, Cls: ir.I32, Pred: ir.ULe, Unsigned: true,
			Args: []ir.Value{bEnd, gp[0]}}
		insertBeforeTerm(pre, c2)
		disjoint := &ir.Instr{Op: ir.OpOr, Cls: ir.I32, Args: []ir.Value{c1, c2}}
		insertBeforeTerm(pre, disjoint)
		andIn(disjoint)
	}
	for gi, gp := range plan.pointGuards {
		scale := plan.pointScales[gi]
		if scale == 0 {
			// Point-point: the two scalar cells must not overlap (8-byte
			// conservative width).
			d := &ir.Instr{Op: ir.OpSub, Cls: ir.I64, Args: []ir.Value{gp[0], gp[1]}}
			insertBeforeTerm(pre, d)
			c1 := &ir.Instr{Op: ir.OpCmp, Cls: ir.I32, Pred: ir.Ge,
				Args: []ir.Value{d, ir.ConstInt(ir.I64, 8)}}
			insertBeforeTerm(pre, c1)
			c2 := &ir.Instr{Op: ir.OpCmp, Cls: ir.I32, Pred: ir.Le,
				Args: []ir.Value{d, ir.ConstInt(ir.I64, -8)}}
			insertBeforeTerm(pre, c2)
			apart := &ir.Instr{Op: ir.OpOr, Cls: ir.I32, Args: []ir.Value{c1, c2}}
			insertBeforeTerm(pre, apart)
			andIn(apart)
			continue
		}
		ext := &ir.Instr{Op: ir.OpMul, Cls: ir.I64,
			Args: []ir.Value{span64, ir.ConstInt(ir.I64, int64(scale))}}
		insertBeforeTerm(pre, ext)
		bEnd := &ir.Instr{Op: ir.OpAdd, Cls: ir.I64, Args: []ir.Value{gp[1], ext}}
		insertBeforeTerm(pre, bEnd)
		c1 := &ir.Instr{Op: ir.OpCmp, Cls: ir.I32, Pred: ir.ULt, Unsigned: true,
			Args: []ir.Value{gp[0], gp[1]}}
		insertBeforeTerm(pre, c1)
		c2 := &ir.Instr{Op: ir.OpCmp, Cls: ir.I32, Pred: ir.UGe, Unsigned: true,
			Args: []ir.Value{gp[0], bEnd}}
		insertBeforeTerm(pre, c2)
		outside := &ir.Instr{Op: ir.OpOr, Cls: ir.I32, Args: []ir.Value{c1, c2}}
		insertBeforeTerm(pre, outside)
		andIn(outside)
	}
	if okAll != nil {
		sel := &ir.Instr{Op: ir.OpSelect, Cls: cls, Args: []ir.Value{okAll, vecLimit, iv0}}
		insertBeforeTerm(pre, sel)
		vecLimit = sel
	}

	vheader := f.NewBlock("vec.header")
	vbody := f.NewBlock("vec.body")
	vmerge := f.NewBlock("vec.merge")

	// Reduction accumulators: one wide alloca per reduction (register or
	// memory), initialized to the op identity.
	type vacc struct {
		scalarPtr ir.Value // the original accumulator location
		slot      *ir.Instr
		cls       ir.Class
		op        ir.Op
		loadIn    *ir.Instr
		combine   *ir.Instr
		store     *ir.Instr
	}
	identOf := func(op ir.Op, rcls ir.Class) ir.Value {
		switch {
		case op == ir.OpMul && rcls.IsFloat():
			return ir.ConstFloat(rcls, 1)
		case op == ir.OpMul:
			return ir.ConstInt(rcls, 1)
		case rcls.IsFloat():
			return ir.ConstFloat(rcls, 0)
		default:
			return ir.ConstInt(rcls, 0)
		}
	}
	var vaccs []vacc
	entry := f.Entry()
	addAcc := func(scalarPtr ir.Value, op ir.Op, loadIn, combine, store *ir.Instr) {
		rcls := store.Args[1].Class()
		slot := &ir.Instr{Op: ir.OpAlloca, Cls: ir.Ptr, Name: "vec.acc", AllocSz: rcls.Size() * width, Span: store.Span}
		entry.InsertBefore(0, slot)
		splat := &ir.Instr{Op: ir.OpVecSplat, Cls: rcls, Width: width,
			Args: []ir.Value{identOf(op, rcls)}, Span: store.Span}
		insertBeforeTerm(pre, splat)
		vst := &ir.Instr{Op: ir.OpVecStore, Cls: rcls, Width: width, Args: []ir.Value{slot, splat}, Span: store.Span}
		insertBeforeTerm(pre, vst)
		vaccs = append(vaccs, vacc{scalarPtr: scalarPtr, slot: slot, cls: rcls, op: op,
			loadIn: loadIn, combine: combine, store: store})
	}
	for _, red := range plan.reductions {
		addAcc(red.alloca, red.op, red.loadIn, red.combine, red.store)
	}
	for _, mr := range plan.memReds {
		addAcc(mr.ptr, mr.op, mr.loadIn, mr.combine, mr.store)
	}

	// Guard/limit code in the preheader derives from the loop condition;
	// instructions stamped above (trip-count math, accumulator init) keep
	// their more specific spans.
	for _, in := range pre.Instrs[preMark-1 : len(pre.Instrs)-1] {
		if !in.Span.IsValid() {
			in.Span = cl.cmp.Span
		}
	}

	retarget(pre.Terminator(), cl.header, vheader)

	ivL := vheader.Append(&ir.Instr{Op: ir.OpLoad, Cls: cls, Args: []ir.Value{cl.ivAlloca}, Span: cl.ivLoadH.Span})
	c := vheader.Append(&ir.Instr{Op: ir.OpCmp, Cls: ir.I32, Pred: ir.Lt, Unsigned: cl.cmp.Unsigned,
		Args: []ir.Value{ivL, vecLimit}, Span: cl.cmp.Span})
	vheader.Append(&ir.Instr{Op: ir.OpCondBr, Cls: ir.Void, Args: []ir.Value{c},
		Then: vbody, Else: vmerge, Span: cl.cmp.Span})

	// Build the vector body.
	vmap := map[ir.Value]ir.Value{}    // original -> vector value
	uniform := map[ir.Value]ir.Value{} // original -> scalar clone
	ivLoads := map[*ir.Instr]bool{}    // loads mapped to iota vectors on demand
	isVec := func(v ir.Value) bool { _, ok := vmap[v]; return ok }
	scalarOf := func(v ir.Value) ir.Value {
		if u, ok := uniform[v]; ok {
			return u
		}
		return v
	}
	var vecOf func(v ir.Value, rcls ir.Class) ir.Value
	vecOf = func(v ir.Value, rcls ir.Class) ir.Value {
		if w, ok := vmap[v]; ok {
			return w
		}
		if in, ok := v.(*ir.Instr); ok && ivLoads[in] {
			// Induction value as data: splat(iv) + iota.
			sp := vbody.Append(&ir.Instr{Op: ir.OpVecSplat, Cls: in.Cls, Width: width,
				Args: []ir.Value{scalarOf(v)}})
			iota := vbody.Append(&ir.Instr{Op: ir.OpVecIota, Cls: in.Cls, Width: width})
			sum := vbody.Append(&ir.Instr{Op: ir.OpVecBin, Cls: in.Cls, Width: width,
				VecOp: ir.OpAdd, Args: []ir.Value{sp, iota}})
			vmap[v] = sum
			return sum
		}
		sp := vbody.Append(&ir.Instr{Op: ir.OpVecSplat, Cls: rcls, Width: width,
			Args: []ir.Value{scalarOf(v)}})
		vmap[v] = sp
		return sp
	}

	redByStore := map[*ir.Instr]*vacc{}
	redByLoad := map[*ir.Instr]*vacc{}
	for i := range vaccs {
		redByStore[vaccs[i].store] = &vaccs[i]
		redByLoad[vaccs[i].loadIn] = &vaccs[i]
	}
	secByStore := map[*ir.Instr]*secIV{}
	for i := range plan.secIVs {
		secByStore[plan.secIVs[i].incStore] = &plan.secIVs[i]
	}
	streamLoads := map[*ir.Instr]bool{}
	for _, s := range plan.loads {
		streamLoads[s.instr] = true
	}
	streamStores := map[*ir.Instr]bool{}
	for _, s := range plan.stores {
		streamStores[s.instr] = true
	}
	uniformLoadSet := map[*ir.Instr]bool{}
	for _, u := range plan.uniformLoads {
		uniformLoadSet[u] = true
	}

	emitInc := func(alloca *ir.Instr, icls ir.Class) {
		ld := vbody.Append(&ir.Instr{Op: ir.OpLoad, Cls: icls, Args: []ir.Value{alloca}})
		add := vbody.Append(&ir.Instr{Op: ir.OpAdd, Cls: icls,
			Args: []ir.Value{ld, ir.ConstInt(icls, int64(width))}})
		vbody.Append(&ir.Instr{Op: ir.OpStore, Cls: ir.Void, Args: []ir.Value{alloca, add}})
	}

	for _, in := range cl.body.Instrs {
		// Everything the widening of this instruction appends (including
		// lazy splats materialized by vecOf) inherits its span.
		vbodyMark := len(vbody.Instrs)
		switch {
		case in == cl.incStore:
			emitInc(cl.ivAlloca, cls)

		case secByStore[in] != nil:
			s := secByStore[in]
			emitInc(s.alloca, s.incAdd.Cls)

		case in.Op == ir.OpLoad &&
			(in.Args[0] == cl.ivAlloca || plan.secOf(in.Args[0]) != nil):
			ld := vbody.Append(&ir.Instr{Op: ir.OpLoad, Cls: in.Cls, Args: []ir.Value{in.Args[0]}})
			uniform[in] = ld
			ivLoads[in] = true

		case uniformLoadSet[in]:
			ld := vbody.Append(&ir.Instr{Op: ir.OpLoad, Cls: in.Cls,
				Args: []ir.Value{scalarOf(in.Args[0])}})
			uniform[in] = ld

		case redByLoad[in] != nil:
			va := redByLoad[in]
			vl := vbody.Append(&ir.Instr{Op: ir.OpVecLoad, Cls: va.cls, Width: width,
				Args: []ir.Value{va.slot}})
			vmap[in] = vl

		case redByStore[in] != nil:
			va := redByStore[in]
			comb := vecOf(va.combine, va.cls)
			vbody.Append(&ir.Instr{Op: ir.OpVecStore, Cls: va.cls, Width: width,
				Args: []ir.Value{va.slot, comb}})

		case streamLoads[in]:
			gep := scalarOf(in.Args[0])
			vl := vbody.Append(&ir.Instr{Op: ir.OpVecLoad, Cls: in.Cls, Width: width,
				Args: []ir.Value{gep}})
			vmap[in] = vl

		case streamStores[in]:
			gep := scalarOf(in.Args[0])
			v := vecOf(in.Args[1], in.Args[1].Class())
			vbody.Append(&ir.Instr{Op: ir.OpVecStore, Cls: in.Args[1].Class(), Width: width,
				Args: []ir.Value{gep, v}})

		case in.Op == ir.OpConvert && isIotaSource(ivLoads, in.Args[0]):
			// A widened induction value: keep a scalar clone for address
			// computations and mark it as an iota source for data uses.
			cp := vbody.Append(&ir.Instr{Op: ir.OpConvert, Cls: in.Cls, Unsigned: in.Unsigned,
				Args: []ir.Value{scalarOf(in.Args[0])}})
			uniform[in] = cp
			ivLoads[in] = true

		case in.Op == ir.OpGEP:
			cp := vbody.Append(&ir.Instr{Op: ir.OpGEP, Cls: ir.Ptr, Scale: in.Scale, Off: in.Off,
				Args: []ir.Value{scalarOf(in.Args[0]), scalarOf(in.Args[1])}})
			uniform[in] = cp

		case in.Op == ir.OpCall:
			// Non-builtin calls reach here only when planVectorization
			// admitted them: summary-proven ReadNone with loop-invariant
			// arguments, so anyVec is false and the uniform clone applies.
			anyVec := false
			for _, a := range in.Args {
				if isVec(a) || isIotaSource(ivLoads, a) {
					anyVec = true
				}
			}
			if anyVec {
				args := make([]ir.Value, len(in.Args))
				for i, a := range in.Args {
					args[i] = vecOf(a, ir.F64)
				}
				vc := vbody.Append(&ir.Instr{Op: ir.OpVecCall, Cls: in.Cls, Width: width,
					Callee: in.Callee, Args: args})
				vmap[in] = vc
			} else {
				args := make([]ir.Value, len(in.Args))
				for i, a := range in.Args {
					args[i] = scalarOf(a)
				}
				cp := vbody.Append(&ir.Instr{Op: ir.OpCall, Cls: in.Cls, Callee: in.Callee, Args: args})
				uniform[in] = cp
			}

		case in.Op == ir.OpSelect:
			if anyVecArg(vmap, ivLoads, in.Args) {
				m2 := vecOf(in.Args[0], ir.I32)
				x := vecOf(in.Args[1], in.Cls)
				y := vecOf(in.Args[2], in.Cls)
				vs := vbody.Append(&ir.Instr{Op: ir.OpVecSelect, Cls: in.Cls, Width: width,
					Args: []ir.Value{m2, x, y}})
				vmap[in] = vs
			} else {
				cp := vbody.Append(&ir.Instr{Op: ir.OpSelect, Cls: in.Cls,
					Args: []ir.Value{scalarOf(in.Args[0]), scalarOf(in.Args[1]), scalarOf(in.Args[2])}})
				uniform[in] = cp
			}

		case in.Op == ir.OpCmp:
			if anyVecArg(vmap, ivLoads, in.Args) {
				a := vecOf(in.Args[0], in.Args[0].Class())
				b := vecOf(in.Args[1], in.Args[1].Class())
				vc := vbody.Append(&ir.Instr{Op: ir.OpVecBin, Cls: ir.I32, Width: width,
					VecOp: ir.OpCmp, Pred: in.Pred, Unsigned: in.Unsigned, Args: []ir.Value{a, b}})
				vmap[in] = vc
			} else {
				cp := vbody.Append(&ir.Instr{Op: ir.OpCmp, Cls: in.Cls, Pred: in.Pred,
					Unsigned: in.Unsigned, Args: []ir.Value{scalarOf(in.Args[0]), scalarOf(in.Args[1])}})
				uniform[in] = cp
			}

		case isPureValueOp(in) && len(in.Args) == 2:
			if anyVecArg(vmap, ivLoads, in.Args) {
				a := vecOf(in.Args[0], in.Cls)
				b := vecOf(in.Args[1], in.Cls)
				vb := vbody.Append(&ir.Instr{Op: ir.OpVecBin, Cls: in.Cls, Width: width,
					VecOp: in.Op, Unsigned: in.Unsigned, Args: []ir.Value{a, b}})
				vmap[in] = vb
			} else {
				cp := vbody.Append(&ir.Instr{Op: in.Op, Cls: in.Cls, Unsigned: in.Unsigned,
					Scale: in.Scale, Off: in.Off,
					Args: []ir.Value{scalarOf(in.Args[0]), scalarOf(in.Args[1])}})
				uniform[in] = cp
			}

		case isPureValueOp(in) && len(in.Args) == 1:
			if anyVecArg(vmap, ivLoads, in.Args) {
				src := vecOf(in.Args[0], classOrSame(in, in.Args[0]))
				switch in.Op {
				case ir.OpNeg:
					zero := vbody.Append(&ir.Instr{Op: ir.OpVecSplat, Cls: in.Cls, Width: width,
						Args: []ir.Value{zeroConst(in.Cls)}})
					vb := vbody.Append(&ir.Instr{Op: ir.OpVecBin, Cls: in.Cls, Width: width,
						Unsigned: in.Unsigned, VecOp: ir.OpSub, Args: []ir.Value{zero, src}})
					vmap[in] = vb
				case ir.OpConvert:
					// Lane-wise convert: add a zero of the target class;
					// the interpreter's lane arithmetic performs the
					// conversion.
					zero := vbody.Append(&ir.Instr{Op: ir.OpVecSplat, Cls: in.Cls, Width: width,
						Args: []ir.Value{zeroConst(in.Cls)}})
					vb := vbody.Append(&ir.Instr{Op: ir.OpVecBin, Cls: in.Cls, Width: width,
						Unsigned: in.Unsigned, VecOp: ir.OpAdd, Args: []ir.Value{src, zero}})
					vmap[in] = vb
				case ir.OpNot:
					all := vbody.Append(&ir.Instr{Op: ir.OpVecSplat, Cls: in.Cls, Width: width,
						Args: []ir.Value{ir.ConstInt(in.Cls, -1)}})
					vb := vbody.Append(&ir.Instr{Op: ir.OpVecBin, Cls: in.Cls, Width: width,
						Unsigned: in.Unsigned, VecOp: ir.OpXor, Args: []ir.Value{src, all}})
					vmap[in] = vb
				default:
					cp := vbody.Append(&ir.Instr{Op: in.Op, Cls: in.Cls, Unsigned: in.Unsigned,
						Args: []ir.Value{scalarOf(in.Args[0])}})
					uniform[in] = cp
				}
			} else {
				cp := vbody.Append(&ir.Instr{Op: in.Op, Cls: in.Cls, Unsigned: in.Unsigned,
					Args: []ir.Value{scalarOf(in.Args[0])}})
				uniform[in] = cp
			}

		case in.Op == ir.OpMustNotAlias || in.Op == ir.OpBr:
			// Metadata / terminator: skip.

		default:
			// planVectorization guaranteed we never get here.
		}
		for _, ni := range vbody.Instrs[vbodyMark:] {
			ni.Span = in.Span
		}
	}
	vbody.Append(&ir.Instr{Op: ir.OpBr, Cls: ir.Void, Target: vheader, Span: cl.cmp.Span})

	// Merge block: fold vector accumulators into the scalar locations,
	// then fall into the scalar remainder loop.
	for _, va := range vaccs {
		sp := va.store.Span
		vl := vmerge.Append(&ir.Instr{Op: ir.OpVecLoad, Cls: va.cls, Width: width,
			Args: []ir.Value{va.slot}, Span: sp})
		red := vmerge.Append(&ir.Instr{Op: ir.OpVecReduce, Cls: va.cls, Width: width,
			VecOp: va.op, Args: []ir.Value{vl}, Span: sp})
		old := vmerge.Append(&ir.Instr{Op: ir.OpLoad, Cls: va.cls, Args: []ir.Value{va.scalarPtr}, Span: sp})
		comb := vmerge.Append(&ir.Instr{Op: va.op, Cls: va.cls, Args: []ir.Value{old, red}, Span: sp})
		vmerge.Append(&ir.Instr{Op: ir.OpStore, Cls: ir.Void, Args: []ir.Value{va.scalarPtr, comb}, Span: sp})
	}
	vmerge.Append(&ir.Instr{Op: ir.OpBr, Cls: ir.Void, Target: cl.header, Span: cl.cmp.Span})
}

// anyVecArg reports whether any argument already has (or will need) a
// vector mapping.
func anyVecArg(vmap map[ir.Value]ir.Value, ivLoads map[*ir.Instr]bool, args []ir.Value) bool {
	for _, a := range args {
		if _, ok := vmap[a]; ok {
			return true
		}
		if isIotaSource(ivLoads, a) {
			return true
		}
	}
	return false
}

func isIotaSource(ivLoads map[*ir.Instr]bool, v ir.Value) bool {
	in, ok := v.(*ir.Instr)
	return ok && ivLoads[in]
}

func classOrSame(in *ir.Instr, arg ir.Value) ir.Class {
	if in.Op == ir.OpConvert {
		return arg.Class()
	}
	return in.Cls
}

func zeroConst(cls ir.Class) ir.Value {
	if cls.IsFloat() {
		return ir.ConstFloat(cls, 0)
	}
	return ir.ConstInt(cls, 0)
}
