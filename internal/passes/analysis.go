package passes

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sync"

	"repro/internal/aa"
	"repro/internal/ir"
	"repro/internal/telemetry"
)

// AnalysisID names one cached per-function analysis.
type AnalysisID uint8

const (
	// AnalysisDom is the dominator tree (ir.ComputeDom).
	AnalysisDom AnalysisID = iota
	// AnalysisLoops is the natural-loop forest (ir.FindLoops).
	AnalysisLoops
	// AnalysisUses is the value -> using-instructions map (buildUses).
	AnalysisUses
	// AnalysisAA is the alias-analysis chain (aa.Manager), including the
	// unseq-aa π fact table.
	AnalysisAA

	numAnalyses
)

func (id AnalysisID) String() string {
	switch id {
	case AnalysisDom:
		return "dom"
	case AnalysisLoops:
		return "loops"
	case AnalysisUses:
		return "uses"
	case AnalysisAA:
		return "aa"
	}
	return "?"
}

// Preserved is the set of analyses a pass guarantees are still valid
// after it ran. Everything outside the set is invalidated by the pass
// executor before the next pass runs.
type Preserved uint8

// PreserveNone invalidates every cached analysis (the safe default for
// passes that change the CFG).
const PreserveNone Preserved = 0

// Preserve builds a set from explicit analysis IDs.
func Preserve(ids ...AnalysisID) Preserved {
	var p Preserved
	for _, id := range ids {
		p |= 1 << id
	}
	return p
}

// Has reports whether id is in the set.
func (p Preserved) Has(id AnalysisID) bool { return p&(1<<id) != 0 }

// dynPreserve upgrades a pass's static preservation set when the pass
// reports zero changes: an untouched function keeps its dominator tree,
// loop forest, and use lists (all pure content functions of the IR).
// The AA chain is deliberately never upgraded — its validity is pinned
// to the refresh *schedule*, not just to function content: a pass that
// statically preserves AA (earlycse, dse) may mutate the function while
// deliberately serving consumers the pre-mutation facts, so "zero
// changes since the last pass" does not imply the cached chain matches
// what a fresh rebuild would answer.
func dynPreserve(base Preserved, changed int) Preserved {
	if changed == 0 {
		return base | Preserve(AnalysisDom, AnalysisLoops, AnalysisUses)
	}
	return base
}

// AnalysisManager lazily computes and caches the per-function analyses
// passes consume, keyed by AnalysisID. A pass acquires an analysis with
// Dom/Loops/Uses/AA at the moment it needs it — replacing the manual
// ComputeDom/FindLoops/buildUses/mgr.Refresh call sites the passes used
// to carry — and declares via its Preserved result which entries
// survive it. Cache hits and misses are counted per analysis and
// exported as analysis/cache_hits / analysis/cache_misses.
type AnalysisManager struct {
	mod     *ir.Module
	fn      *ir.Func
	opts    *Options
	resolve func(string) *ir.Func
	tel     *telemetry.Session

	// mgr exists for the whole pipeline run (AA query statistics and
	// audit attribution accumulate across passes); valid[AnalysisAA]
	// tracks whether its caches reflect a refresh the current consumer
	// may rely on.
	mgr   *aa.Manager
	dom   *ir.DomTree
	loops []*ir.Loop
	uses  map[ir.Value][]*ir.Instr
	valid [numAnalyses]bool

	hits, misses [numAnalyses]int64
}

// newAnalysisManager builds the manager for one function's pipeline
// run. resolve supplies callee bodies for inlining (nil = the live
// module). sums is the module's pre-pipeline interprocedural summary
// table (nil = calls stay clobber-everything barriers); it is computed
// once before the function pipelines start and read-only here, which
// keeps -j1 and -jN byte-identical.
func newAnalysisManager(mod *ir.Module, fn *ir.Func, opts *Options, resolve func(string) *ir.Func, sums *aa.Summaries) *AnalysisManager {
	am := &AnalysisManager{
		mod:     mod,
		fn:      fn,
		opts:    opts,
		resolve: resolve,
		tel:     opts.Telemetry,
	}
	if am.resolve == nil && mod != nil {
		am.resolve = mod.FindFunc
	}
	am.mgr = aa.NewManager(fn, opts.UseUnseqAA)
	am.mgr.AttachAudit(am.tel, mod, fn.Name)
	if sums != nil {
		am.mgr.SetSummaries(sums)
	}
	return am
}

// Func returns the function under optimization.
func (am *AnalysisManager) Func() *ir.Func { return am.fn }

// Module returns the containing module.
func (am *AnalysisManager) Module() *ir.Module { return am.mod }

// Options returns the pipeline options.
func (am *AnalysisManager) Options() *Options { return am.opts }

// Telemetry returns the session passes report spans/remarks to (nil is
// the no-op session).
func (am *AnalysisManager) Telemetry() *telemetry.Session { return am.tel }

// Resolve maps a callee name to its body for inlining.
func (am *AnalysisManager) Resolve(name string) *ir.Func {
	if am.resolve == nil {
		return nil
	}
	return am.resolve(name)
}

func (am *AnalysisManager) touch(id AnalysisID) bool {
	if am.valid[id] {
		am.hits[id]++
		return true
	}
	am.misses[id]++
	am.valid[id] = true
	return false
}

// Dom returns the (cached) dominator tree.
func (am *AnalysisManager) Dom() *ir.DomTree {
	if !am.touch(AnalysisDom) {
		am.dom = ir.ComputeDom(am.fn)
	}
	return am.dom
}

// Loops returns the (cached) loop forest.
func (am *AnalysisManager) Loops() []*ir.Loop {
	dt := am.Dom()
	if !am.touch(AnalysisLoops) {
		am.loops = ir.FindLoops(am.fn, dt)
	}
	return am.loops
}

// Uses returns the (cached) value -> using-instructions map. A pass
// that mutates the function mid-run must call InvalidateUses before
// re-acquiring it.
func (am *AnalysisManager) Uses() map[ir.Value][]*ir.Instr {
	if !am.touch(AnalysisUses) {
		am.uses = buildUses(am.fn)
	}
	return am.uses
}

// AA returns the alias-analysis chain, refreshed against the current
// function body if a prior pass invalidated it.
func (am *AnalysisManager) AA() *aa.Manager {
	if !am.touch(AnalysisAA) {
		am.mgr.Refresh(am.fn)
	}
	return am.mgr
}

// Invalidate drops every cached analysis not in p. The pass executor
// calls it with each pass's Preserved result.
func (am *AnalysisManager) Invalidate(p Preserved) {
	for id := AnalysisID(0); id < numAnalyses; id++ {
		if !p.Has(id) {
			am.valid[id] = false
		}
	}
}

// InvalidateUses drops the use-list cache only — for passes that mutate
// the function while holding other analyses.
func (am *AnalysisManager) InvalidateUses() { am.valid[AnalysisUses] = false }

// ---------- module-level analyses ----------

// ModuleAnalysisID names one cached module-level analysis.
type ModuleAnalysisID uint8

const (
	// ModuleAnalysisCallGraph is the call graph + SCC decomposition.
	ModuleAnalysisCallGraph ModuleAnalysisID = iota
	// ModuleAnalysisSummaries is the bottom-up interprocedural summary
	// table (aa.Summaries), which consumes the call graph's SCC order.
	ModuleAnalysisSummaries

	numModuleAnalyses
)

func (id ModuleAnalysisID) String() string {
	switch id {
	case ModuleAnalysisCallGraph:
		return "callgraph"
	case ModuleAnalysisSummaries:
		return "summaries"
	}
	return "?"
}

// ModulePreserved is the set of module analyses still valid after a
// module-shape edit, mirroring the function-level Preserved bitset.
type ModulePreserved uint8

// ModulePreserveNone invalidates every module analysis — the safe
// answer whenever the call graph was edited (inlining, dead-function
// removal).
const ModulePreserveNone ModulePreserved = 0

// PreserveModule builds a set from explicit IDs.
func PreserveModule(ids ...ModuleAnalysisID) ModulePreserved {
	var p ModulePreserved
	for _, id := range ids {
		p |= 1 << id
	}
	return p
}

// Has reports whether id is in the set.
func (p ModulePreserved) Has(id ModuleAnalysisID) bool { return p&(1<<id) != 0 }

// ModuleAnalyses lazily computes and caches module-scoped analyses —
// the AnalysisManager's module-level tier. Unlike the per-function
// manager it must be safe for concurrent use: the -j scheduler's
// workers share one instance. Determinism note: RunModule forces both
// analyses eagerly *before* the function pipelines start, so every
// worker reads the same pre-pipeline snapshot regardless of
// scheduling; laziness only serves ad-hoc consumers (debug dumps,
// tests).
type ModuleAnalyses struct {
	mod *ir.Module

	mu    sync.Mutex
	cg    *CallGraph
	sums  *aa.Summaries
	keys  []FuncKey
	valid [numModuleAnalyses]bool

	hits, misses [numModuleAnalyses]int64
}

// NewModuleAnalyses builds the manager for mod.
func NewModuleAnalyses(mod *ir.Module) *ModuleAnalyses {
	return &ModuleAnalyses{mod: mod}
}

// Module returns the analyzed module.
func (ma *ModuleAnalyses) Module() *ir.Module { return ma.mod }

func (ma *ModuleAnalyses) touch(id ModuleAnalysisID) bool {
	if ma.valid[id] {
		ma.hits[id]++
		return true
	}
	ma.misses[id]++
	ma.valid[id] = true
	return false
}

// CallGraph returns the (cached) call graph.
func (ma *ModuleAnalyses) CallGraph() *CallGraph {
	ma.mu.Lock()
	defer ma.mu.Unlock()
	return ma.callGraphLocked()
}

func (ma *ModuleAnalyses) callGraphLocked() *CallGraph {
	if !ma.touch(ModuleAnalysisCallGraph) {
		ma.cg = BuildCallGraph(ma.mod)
	}
	return ma.cg
}

// Summaries returns the (cached) interprocedural summary table,
// computed in the call graph's bottom-up SCC order.
func (ma *ModuleAnalyses) Summaries() *aa.Summaries {
	ma.mu.Lock()
	defer ma.mu.Unlock()
	cg := ma.callGraphLocked()
	if !ma.touch(ModuleAnalysisSummaries) {
		ma.sums = aa.BuildSummaries(ma.mod, cg.BottomUp(), pureBuiltin)
	}
	return ma.sums
}

// SnapshotSummaries returns the most recently computed table without
// recomputing, even if a later Invalidate marked it stale — the dump
// consumers (-print-summaries) want exactly what the pipelines
// consumed. Nil if never computed.
func (ma *ModuleAnalyses) SnapshotSummaries() *aa.Summaries {
	ma.mu.Lock()
	defer ma.mu.Unlock()
	return ma.sums
}

// SnapshotCallGraph is SnapshotSummaries' call-graph counterpart.
func (ma *ModuleAnalyses) SnapshotCallGraph() *CallGraph {
	ma.mu.Lock()
	defer ma.mu.Unlock()
	return ma.cg
}

// Invalidate drops every module analysis not in p. RunModule calls it
// with ModulePreserveNone after a run whose stats show the call graph
// was edited (inlined calls or deleted functions); a consumer that
// re-runs analyses afterwards recomputes them from the current module.
func (ma *ModuleAnalyses) Invalidate(p ModulePreserved) {
	ma.mu.Lock()
	defer ma.mu.Unlock()
	for id := ModuleAnalysisID(0); id < numModuleAnalyses; id++ {
		if !p.Has(id) {
			ma.valid[id] = false
		}
	}
	// ma.keys survives: FuncKeys is defined as a pre-pipeline snapshot
	// (like SnapshotSummaries), not a live analysis.
}

// record exports hit/miss counters under the module_analysis/
// namespace.
func (ma *ModuleAnalyses) record(tel *telemetry.Session) {
	if !tel.MetricsEnabled() {
		return
	}
	ma.mu.Lock()
	defer ma.mu.Unlock()
	for id := ModuleAnalysisID(0); id < numModuleAnalyses; id++ {
		tel.Count("module_analysis/hits/"+id.String(), ma.hits[id])
		tel.Count("module_analysis/misses/"+id.String(), ma.misses[id])
	}
}

// FuncKey is one function's content key: a digest of everything the
// function's pipeline can observe — its own pre-pipeline body, the
// summaries of every function it can reach (so an edit to a callee
// invalidates its callers but nobody else), and the source provenance
// of the π predicates in its body. This is the sub-TU cache identity
// the compile service keys per-function artifacts on.
type FuncKey struct {
	Name string `json:"name"`
	Key  string `json:"key"`
}

// FuncKeys computes (and caches) the per-function content keys from
// the current module state. RunModule calls it before the pipelines
// mutate anything when Options.WantFuncKeys is set.
func (ma *ModuleAnalyses) FuncKeys() []FuncKey {
	ma.mu.Lock()
	defer ma.mu.Unlock()
	if ma.keys != nil {
		return ma.keys
	}
	cg := ma.callGraphLocked()
	if !ma.touch(ModuleAnalysisSummaries) {
		ma.sums = aa.BuildSummaries(ma.mod, cg.BottomUp(), pureBuiltin)
	}
	reach := cg.Reachable()
	keys := make([]FuncKey, len(ma.mod.Funcs))
	for i, f := range ma.mod.Funcs {
		h := sha256.New()
		field := func(tag, val string) {
			var n [8]byte
			binary.LittleEndian.PutUint64(n[:], uint64(len(tag)))
			h.Write(n[:])
			h.Write([]byte(tag))
			binary.LittleEndian.PutUint64(n[:], uint64(len(val)))
			h.Write(n[:])
			h.Write([]byte(val))
		}
		field("schema", "ooed-funckey/v1")
		field("body", f.String())
		// Reachable callees in deterministic (module-index) order: both
		// the summary (param-level effects and exported π pairs — the
		// mod/ref surface the caller's pipeline consumes) and the body
		// (the inliner splices reachable callee bodies verbatim, so any
		// callee edit is a caller input change even when the summary is
		// unaffected).
		for j := range ma.mod.Funcs {
			if _, ok := reach[i][j]; ok {
				cf := ma.mod.Funcs[j]
				field("callee:"+cf.Name, ma.sums.Of(cf.Name).String())
				field("calleebody:"+cf.Name, cf.String())
			}
		}
		// π provenance: the source spellings behind the Meta ids in this
		// function's body (remarks/audit render them, so they are part of
		// the artifact identity).
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpMustNotAlias && in.Meta > 0 {
					if p := ma.mod.FindProvenance(in.Meta); p != nil {
						field("pi", p.E1+"|"+p.E2+"|"+p.Span1.String()+"|"+p.Span2.String())
					}
				}
			}
		}
		keys[i] = FuncKey{Name: f.Name, Key: hex.EncodeToString(h.Sum(nil))}
	}
	ma.keys = keys
	return keys
}

// record exports the hit/miss counters to the telemetry registry.
func (am *AnalysisManager) record() {
	if !am.tel.MetricsEnabled() {
		return
	}
	var hits, misses int64
	for id := AnalysisID(0); id < numAnalyses; id++ {
		hits += am.hits[id]
		misses += am.misses[id]
		am.tel.Count("analysis/hits/"+id.String(), am.hits[id])
		am.tel.Count("analysis/misses/"+id.String(), am.misses[id])
	}
	am.tel.Count("analysis/cache_hits", hits)
	am.tel.Count("analysis/cache_misses", misses)
}
