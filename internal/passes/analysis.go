package passes

import (
	"repro/internal/aa"
	"repro/internal/ir"
	"repro/internal/telemetry"
)

// AnalysisID names one cached per-function analysis.
type AnalysisID uint8

const (
	// AnalysisDom is the dominator tree (ir.ComputeDom).
	AnalysisDom AnalysisID = iota
	// AnalysisLoops is the natural-loop forest (ir.FindLoops).
	AnalysisLoops
	// AnalysisUses is the value -> using-instructions map (buildUses).
	AnalysisUses
	// AnalysisAA is the alias-analysis chain (aa.Manager), including the
	// unseq-aa π fact table.
	AnalysisAA

	numAnalyses
)

func (id AnalysisID) String() string {
	switch id {
	case AnalysisDom:
		return "dom"
	case AnalysisLoops:
		return "loops"
	case AnalysisUses:
		return "uses"
	case AnalysisAA:
		return "aa"
	}
	return "?"
}

// Preserved is the set of analyses a pass guarantees are still valid
// after it ran. Everything outside the set is invalidated by the pass
// executor before the next pass runs.
type Preserved uint8

// PreserveNone invalidates every cached analysis (the safe default for
// passes that change the CFG).
const PreserveNone Preserved = 0

// Preserve builds a set from explicit analysis IDs.
func Preserve(ids ...AnalysisID) Preserved {
	var p Preserved
	for _, id := range ids {
		p |= 1 << id
	}
	return p
}

// Has reports whether id is in the set.
func (p Preserved) Has(id AnalysisID) bool { return p&(1<<id) != 0 }

// dynPreserve upgrades a pass's static preservation set when the pass
// reports zero changes: an untouched function keeps its dominator tree,
// loop forest, and use lists (all pure content functions of the IR).
// The AA chain is deliberately never upgraded — its validity is pinned
// to the refresh *schedule*, not just to function content: a pass that
// statically preserves AA (earlycse, dse) may mutate the function while
// deliberately serving consumers the pre-mutation facts, so "zero
// changes since the last pass" does not imply the cached chain matches
// what a fresh rebuild would answer.
func dynPreserve(base Preserved, changed int) Preserved {
	if changed == 0 {
		return base | Preserve(AnalysisDom, AnalysisLoops, AnalysisUses)
	}
	return base
}

// AnalysisManager lazily computes and caches the per-function analyses
// passes consume, keyed by AnalysisID. A pass acquires an analysis with
// Dom/Loops/Uses/AA at the moment it needs it — replacing the manual
// ComputeDom/FindLoops/buildUses/mgr.Refresh call sites the passes used
// to carry — and declares via its Preserved result which entries
// survive it. Cache hits and misses are counted per analysis and
// exported as analysis/cache_hits / analysis/cache_misses.
type AnalysisManager struct {
	mod     *ir.Module
	fn      *ir.Func
	opts    *Options
	resolve func(string) *ir.Func
	tel     *telemetry.Session

	// mgr exists for the whole pipeline run (AA query statistics and
	// audit attribution accumulate across passes); valid[AnalysisAA]
	// tracks whether its caches reflect a refresh the current consumer
	// may rely on.
	mgr   *aa.Manager
	dom   *ir.DomTree
	loops []*ir.Loop
	uses  map[ir.Value][]*ir.Instr
	valid [numAnalyses]bool

	hits, misses [numAnalyses]int64
}

// newAnalysisManager builds the manager for one function's pipeline
// run. resolve supplies callee bodies for inlining (nil = the live
// module).
func newAnalysisManager(mod *ir.Module, fn *ir.Func, opts *Options, resolve func(string) *ir.Func) *AnalysisManager {
	am := &AnalysisManager{
		mod:     mod,
		fn:      fn,
		opts:    opts,
		resolve: resolve,
		tel:     opts.Telemetry,
	}
	if am.resolve == nil && mod != nil {
		am.resolve = mod.FindFunc
	}
	am.mgr = aa.NewManager(fn, opts.UseUnseqAA)
	am.mgr.AttachAudit(am.tel, mod, fn.Name)
	return am
}

// Func returns the function under optimization.
func (am *AnalysisManager) Func() *ir.Func { return am.fn }

// Module returns the containing module.
func (am *AnalysisManager) Module() *ir.Module { return am.mod }

// Options returns the pipeline options.
func (am *AnalysisManager) Options() *Options { return am.opts }

// Telemetry returns the session passes report spans/remarks to (nil is
// the no-op session).
func (am *AnalysisManager) Telemetry() *telemetry.Session { return am.tel }

// Resolve maps a callee name to its body for inlining.
func (am *AnalysisManager) Resolve(name string) *ir.Func {
	if am.resolve == nil {
		return nil
	}
	return am.resolve(name)
}

func (am *AnalysisManager) touch(id AnalysisID) bool {
	if am.valid[id] {
		am.hits[id]++
		return true
	}
	am.misses[id]++
	am.valid[id] = true
	return false
}

// Dom returns the (cached) dominator tree.
func (am *AnalysisManager) Dom() *ir.DomTree {
	if !am.touch(AnalysisDom) {
		am.dom = ir.ComputeDom(am.fn)
	}
	return am.dom
}

// Loops returns the (cached) loop forest.
func (am *AnalysisManager) Loops() []*ir.Loop {
	dt := am.Dom()
	if !am.touch(AnalysisLoops) {
		am.loops = ir.FindLoops(am.fn, dt)
	}
	return am.loops
}

// Uses returns the (cached) value -> using-instructions map. A pass
// that mutates the function mid-run must call InvalidateUses before
// re-acquiring it.
func (am *AnalysisManager) Uses() map[ir.Value][]*ir.Instr {
	if !am.touch(AnalysisUses) {
		am.uses = buildUses(am.fn)
	}
	return am.uses
}

// AA returns the alias-analysis chain, refreshed against the current
// function body if a prior pass invalidated it.
func (am *AnalysisManager) AA() *aa.Manager {
	if !am.touch(AnalysisAA) {
		am.mgr.Refresh(am.fn)
	}
	return am.mgr
}

// Invalidate drops every cached analysis not in p. The pass executor
// calls it with each pass's Preserved result.
func (am *AnalysisManager) Invalidate(p Preserved) {
	for id := AnalysisID(0); id < numAnalyses; id++ {
		if !p.Has(id) {
			am.valid[id] = false
		}
	}
}

// InvalidateUses drops the use-list cache only — for passes that mutate
// the function while holding other analyses.
func (am *AnalysisManager) InvalidateUses() { am.valid[AnalysisUses] = false }

// record exports the hit/miss counters to the telemetry registry.
func (am *AnalysisManager) record() {
	if !am.tel.MetricsEnabled() {
		return
	}
	var hits, misses int64
	for id := AnalysisID(0); id < numAnalyses; id++ {
		hits += am.hits[id]
		misses += am.misses[id]
		am.tel.Count("analysis/hits/"+id.String(), am.hits[id])
		am.tel.Count("analysis/misses/"+id.String(), am.misses[id])
	}
	am.tel.Count("analysis/cache_hits", hits)
	am.tel.Count("analysis/cache_misses", misses)
}
