package passes

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/ir"
)

// --- ParsePipeline / Pipeline ---

func TestParsePipelineRoundTrip(t *testing.T) {
	p, err := ParsePipeline(DefaultPipelineSpec)
	if err != nil {
		t.Fatalf("ParsePipeline(default): %v", err)
	}
	if got := p.String(); got != DefaultPipelineSpec {
		t.Errorf("round trip mismatch:\n got %q\nwant %q", got, DefaultPipelineSpec)
	}
	if got := DefaultPipeline().String(); got != DefaultPipelineSpec {
		t.Errorf("DefaultPipeline().String() = %q, want %q", got, DefaultPipelineSpec)
	}
	// Re-parsing the printed form reproduces the same sequence.
	p2, err := ParsePipeline(p.String())
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if len(p2.Passes()) != len(p.Passes()) {
		t.Fatalf("re-parse length %d, want %d", len(p2.Passes()), len(p.Passes()))
	}
	for i := range p.Passes() {
		if p.Passes()[i].Name() != p2.Passes()[i].Name() {
			t.Errorf("pass %d: %q vs %q", i, p.Passes()[i].Name(), p2.Passes()[i].Name())
		}
	}
}

func TestParsePipelineWhitespace(t *testing.T) {
	p, err := ParsePipeline(" simplifycfg ,\tdce ")
	if err != nil {
		t.Fatalf("ParsePipeline: %v", err)
	}
	if got := p.String(); got != "simplifycfg,dce" {
		t.Errorf("String() = %q, want %q", got, "simplifycfg,dce")
	}
}

func TestParsePipelineErrors(t *testing.T) {
	for _, spec := range []string{"", "   ", "simplifycfg,,dce", "nosuchpass"} {
		if _, err := ParsePipeline(spec); err == nil {
			t.Errorf("ParsePipeline(%q): expected error", spec)
		}
	}
	// Unknown-pass errors name the valid choices.
	_, err := ParsePipeline("nosuchpass")
	if err == nil || !strings.Contains(err.Error(), "simplifycfg") {
		t.Errorf("unknown-pass error should list known passes, got: %v", err)
	}
}

func TestRegisteredPassesCoverDefaultSpec(t *testing.T) {
	known := map[string]bool{}
	for _, n := range RegisteredPasses() {
		known[n] = true
	}
	for _, n := range strings.Split(DefaultPipelineSpec, ",") {
		if !known[n] {
			t.Errorf("default spec names unregistered pass %q", n)
		}
	}
}

// --- AnalysisManager caching / invalidation ---

const amTestSrc = `
int sum(int *a, int n) {
  int s = 0;
  for (int i = 0; i < n; i++) s += a[i];
  return s;
}
int main() { int v[4]; for (int i = 0; i < 4; i++) v[i] = i; return sum(v, 4); }
`

func amForTest(t *testing.T) *AnalysisManager {
	t.Helper()
	mod := benchModule(t, amTestSrc)
	f := mod.FindFunc("sum")
	if f == nil {
		t.Fatal("no sum function")
	}
	opts := DefaultOptions()
	return newAnalysisManager(mod, f, &opts, nil, nil)
}

// TestAnalysisManagerPreservedKeepsCache: an analysis in a pass's
// Preserved set must be served from cache — pointer-equal, not merely
// content-equal — while a non-preserving pass forces a recompute.
func TestAnalysisManagerPreservedKeepsCache(t *testing.T) {
	am := amForTest(t)

	d1 := am.Dom()
	if d2 := am.Dom(); d2 != d1 {
		t.Error("second Dom() without invalidation returned a new tree")
	}
	am.Invalidate(Preserve(AnalysisDom, AnalysisLoops))
	if d3 := am.Dom(); d3 != d1 {
		t.Error("Dom() after a dom-preserving pass returned a new tree")
	}
	am.Invalidate(PreserveNone)
	if d4 := am.Dom(); d4 == d1 {
		t.Error("Dom() after a non-preserving pass served the stale cache")
	}
}

func TestAnalysisManagerLoopsInvalidation(t *testing.T) {
	am := amForTest(t)
	l1 := am.Loops()
	if len(l1) == 0 {
		t.Fatal("expected at least one loop in sum")
	}
	if l2 := am.Loops(); &l2[0] != &l1[0] {
		t.Error("cached loop forest not reused")
	}
	// Preserving Loops but not Dom keeps the forest (Loops depends on
	// Dom only at construction time).
	am.Invalidate(Preserve(AnalysisLoops))
	if l3 := am.Loops(); &l3[0] != &l1[0] {
		t.Error("loop forest recomputed despite being preserved")
	}
	am.Invalidate(PreserveNone)
	l4 := am.Loops()
	if len(l4) != len(l1) {
		t.Fatalf("recomputed forest has %d loops, want %d", len(l4), len(l1))
	}
	if &l4[0] == &l1[0] {
		t.Error("loop forest not recomputed after full invalidation")
	}
}

func TestAnalysisManagerCounters(t *testing.T) {
	am := amForTest(t)
	am.Dom()   // miss
	am.Dom()   // hit
	am.Loops() // dom hit + loops miss
	am.Uses()  // miss
	am.Invalidate(PreserveNone)
	am.Dom() // miss
	wantHits := map[AnalysisID]int64{AnalysisDom: 2}
	wantMisses := map[AnalysisID]int64{AnalysisDom: 2, AnalysisLoops: 1, AnalysisUses: 1}
	for id, want := range wantHits {
		if am.hits[id] != want {
			t.Errorf("hits[%s] = %d, want %d", id, am.hits[id], want)
		}
	}
	for id, want := range wantMisses {
		if am.misses[id] != want {
			t.Errorf("misses[%s] = %d, want %d", id, am.misses[id], want)
		}
	}
}

// --- dynPreserve ---

func TestDynPreserve(t *testing.T) {
	up := dynPreserve(PreserveNone, 0)
	for _, id := range []AnalysisID{AnalysisDom, AnalysisLoops, AnalysisUses} {
		if !up.Has(id) {
			t.Errorf("zero-change upgrade missing %s", id)
		}
	}
	if up.Has(AnalysisAA) {
		t.Error("zero-change upgrade must never include AA (validity is pinned to the refresh schedule)")
	}
	if got := dynPreserve(PreserveNone, 3); got != PreserveNone {
		t.Errorf("changed pass upgraded its preserved set: %v", got)
	}
	base := Preserve(AnalysisDom, AnalysisAA)
	if got := dynPreserve(base, 5); got != base {
		t.Errorf("changed pass lost its static set: %v", got)
	}
}

// --- removeDeadFuncs ---

func deadFuncsModule() (*ir.Module, map[string]int) {
	mk := func(name string, callees ...string) *ir.Func {
		f := &ir.Func{Name: name}
		b := f.NewBlock("entry")
		for _, c := range callees {
			b.Append(&ir.Instr{Op: ir.OpCall, Cls: ir.I32, Callee: c})
		}
		b.Append(&ir.Instr{Op: ir.OpRet, Cls: ir.Void})
		return f
	}
	mod := &ir.Module{}
	mod.Funcs = []*ir.Func{
		mk("small_inlined"),  // uncalled + small: deleted
		mk("big_uncalled"),   // uncalled but large: kept (external harness)
		mk("helper"),         // called by main: kept
		mk("main", "helper"), // entry point: always kept
	}
	sizes := map[string]int{
		"small_inlined": 5,
		"big_uncalled":  100,
		"helper":        5,
		"main":          10,
	}
	return mod, sizes
}

func TestRemoveDeadFuncs(t *testing.T) {
	mod, sizes := deadFuncsModule()
	if n := removeDeadFuncs(mod, sizes, true); n != 1 {
		t.Fatalf("deleted %d funcs, want 1", n)
	}
	var names []string
	for _, f := range mod.Funcs {
		names = append(names, f.Name)
	}
	want := []string{"big_uncalled", "helper", "main"}
	if len(names) != len(want) {
		t.Fatalf("kept %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("kept %v, want %v", names, want)
		}
	}
}

// TestRemoveDeadFuncsNoInlining: without any inlining the deletion is
// skipped entirely — external harnesses call functions by name, so a
// merely-uncalled function is not evidence of deadness.
func TestRemoveDeadFuncsNoInlining(t *testing.T) {
	mod, sizes := deadFuncsModule()
	if n := removeDeadFuncs(mod, sizes, false); n != 0 {
		t.Fatalf("deleted %d funcs with inlined=false, want 0", n)
	}
	if len(mod.Funcs) != 4 {
		t.Fatalf("module shrank to %d funcs without inlining", len(mod.Funcs))
	}
}

// --- custom pipelines, -verify-each, -print-changed ---

func TestCustomPipelineRuns(t *testing.T) {
	mod := benchModule(t, amTestSrc)
	pipe, err := ParsePipeline("simplifycfg,mem2reg,dce")
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Pipeline = pipe
	if _, err := RunModule(mod, opts, nil); err != nil {
		t.Fatalf("RunModule(custom pipeline): %v", err)
	}
	if problems := mod.Verify(); len(problems) > 0 {
		t.Fatalf("custom pipeline broke the IR: %v", problems[0])
	}
}

func TestVerifyEachCleanOnDefaultPipeline(t *testing.T) {
	mod := benchModule(t, amTestSrc)
	opts := DefaultOptions()
	opts.VerifyEach = true
	if _, err := RunModule(mod, opts, nil); err != nil {
		t.Fatalf("verify-each flagged the default pipeline: %v", err)
	}
}

// TestPrintChangedDeterministic: -print-changed forces the sequential
// path, so the dump is identical regardless of the requested job count.
func TestPrintChangedDeterministic(t *testing.T) {
	dump := func(jobs int) string {
		mod := benchModule(t, amTestSrc)
		var buf bytes.Buffer
		opts := DefaultOptions()
		opts.Jobs = jobs
		opts.PrintChanged = &buf
		if _, err := RunModule(mod, opts, nil); err != nil {
			t.Fatalf("RunModule(jobs=%d): %v", jobs, err)
		}
		return buf.String()
	}
	d1, d4 := dump(1), dump(4)
	if d1 == "" {
		t.Fatal("print-changed produced no output")
	}
	if d1 != d4 {
		t.Error("print-changed output differs between -j 1 and -j 4")
	}
	if !strings.Contains(d1, "; IR after ") {
		t.Errorf("dump missing header line, got prefix %q", d1[:min(80, len(d1))])
	}
}
