package passes

import (
	"fmt"

	"repro/internal/aa"
	"repro/internal/ir"
	"repro/internal/telemetry"
)

// availMem is an available memory value (a prior load's result or a
// stored value) during the block-local CSE walk. unseqKept/meta record
// that an unseq-aa NoAlias answer is what kept it available past a
// potentially-clobbering write — the attribution for the remark when
// a later load is eliminated against it.
type availMem struct {
	load      *ir.Instr // redundant-load source (nil for stores)
	val       ir.Value  // store-to-load forwarding source
	unseqKept bool
	meta      int
}

// memEntry is one memTable slot; deletion tombstones it in place so the
// insertion order of the live entries is preserved.
type memEntry struct {
	ptr  ir.Value
	e    *availMem
	dead bool
}

// memTable is an insertion-ordered ptr -> availMem map. The invalidation
// walk iterates it issuing alias queries, and the audit log must observe
// those queries in a deterministic order — a plain map's random range
// order would make the -aa-audit artifact differ run to run.
type memTable struct {
	entries []*memEntry
	byPtr   map[ir.Value]*memEntry // live entries only
}

func newMemTable() *memTable {
	return &memTable{byPtr: map[ir.Value]*memEntry{}}
}

func (t *memTable) get(p ir.Value) (*availMem, bool) {
	if en, ok := t.byPtr[p]; ok {
		return en.e, true
	}
	return nil, false
}

func (t *memTable) put(p ir.Value, e *availMem) {
	if en, ok := t.byPtr[p]; ok {
		en.e = e
		return
	}
	en := &memEntry{ptr: p, e: e}
	t.byPtr[p] = en
	t.entries = append(t.entries, en)
}

func (t *memTable) del(p ir.Value) {
	if en, ok := t.byPtr[p]; ok {
		en.dead = true
		delete(t.byPtr, p)
	}
}

// earlyCSE performs block-local common-subexpression elimination and
// redundant-load elimination (the GVN analog LLVM credits in the paper's
// perlbench statistics). Identical pure instructions are unified —
// crucially this makes a CANT_ALIAS annotation's address computations the
// very same IR values as the real accesses, so unseq-aa facts apply to
// both. Loads are reused when no intervening instruction may write the
// location; stores forward their value to subsequent loads.
func earlyCSE(mod *ir.Module, f *ir.Func, mgr *aa.Manager, tel *telemetry.Session) int {
	defer mgr.SetPass(mgr.SetPass("earlycse"))
	removed := 0
	for _, b := range f.Blocks {
		avail := map[string]*ir.Instr{} // pure value numbering
		loads := newMemTable()          // ptr -> load instr providing value
		stored := newMemTable()         // ptr -> last stored value
		seenFacts := map[[2]ir.Value]bool{}

		invalidateTable := func(t *memTable, writePtr ir.Value, size int) {
			for _, en := range t.entries {
				if en.dead {
					continue
				}
				if writePtr == nil || mgr.Alias(aa.Location{Ptr: en.ptr, Size: 8},
					aa.Location{Ptr: writePtr, Size: size}) != aa.NoAlias {
					t.del(en.ptr)
				} else if att := mgr.Last(); att.UnseqDecided && !en.e.unseqKept {
					en.e.unseqKept = true
					en.e.meta = att.PredicateMeta
				}
			}
		}
		// invalidateCallTable drops only the entries the call's summary
		// says it may write, instead of clearing the whole table.
		invalidateCallTable := func(t *memTable, call *ir.Instr) {
			for _, en := range t.entries {
				if en.dead {
					continue
				}
				if mgr.CallModRef(call, aa.Location{Ptr: en.ptr, Size: 8})&aa.ModEffect != 0 {
					t.del(en.ptr)
				} else if att := mgr.Last(); att.UnseqDecided && !en.e.unseqKept {
					en.e.unseqKept = true
					en.e.meta = att.PredicateMeta
				}
			}
		}
		invalidate := func(writePtr ir.Value, size int) {
			invalidateTable(loads, writePtr, size)
			invalidateTable(stored, writePtr, size)
		}

		memRemark := func(kind string, e *availMem) {
			if tel.RemarksEnabled() {
				tel.Remark(telemetry.Remark{
					Pass: "earlycse", Function: f.Name, Loc: b.Name, Kind: kind,
					EnabledByUnseqAA: e.unseqKept, PredicateMeta: e.meta,
				})
			}
		}

		for i := 0; i < len(b.Instrs); i++ {
			in := b.Instrs[i]
			switch {
			case isPureValueOp(in):
				key := valueKey(in)
				if prev, ok := avail[key]; ok {
					replaceUses(f, in, prev)
					removeAt(b, i)
					i--
					removed++
					continue
				}
				avail[key] = in

			case in.Op == ir.OpLoad && !in.Volatile:
				ptr := in.Args[0]
				if e, ok := stored.get(ptr); ok && e.val.Class() == in.Cls {
					// Store-to-load forwarding. The slot narrows the value to
					// the load width and the load re-extends per its own
					// signedness; a stored value in a different canonical form
					// (e.g. sign-extended, reloaded unsigned) cannot be
					// substituted directly — rewrite the load into the convert
					// that replays that round-trip instead.
					if v, exact := canonicalFor(e.val, in.Cls, in.Unsigned); exact {
						replaceUses(f, in, v)
						removeAt(b, i)
						i--
					} else {
						in.Op = ir.OpConvert
						in.Args = []ir.Value{e.val}
					}
					removed++
					memRemark("StoreForwarded", e)
					continue
				}
				if e, ok := loads.get(ptr); ok && e.load.Cls == in.Cls &&
					(e.load.Unsigned == in.Unsigned || in.Cls == ir.I64 ||
						in.Cls == ir.Ptr || in.Cls.IsFloat()) {
					replaceUses(f, in, e.load)
					removeAt(b, i)
					i--
					removed++
					memRemark("LoadEliminated", e)
					continue
				}
				loads.put(ptr, &availMem{load: in})

			case in.Op == ir.OpStore && !in.Volatile:
				ptr := in.Args[0]
				invalidate(ptr, accessSize(in))
				stored.put(ptr, &availMem{val: in.Args[1]})
				loads.del(ptr)

			case in.Op == ir.OpVecStore || in.Op == ir.OpMemset || in.Op == ir.OpMemcpy:
				ptr, size := memLoc(in)
				invalidate(ptr, size)

			case in.Op == ir.OpCall:
				reads, writes := callEffects(mod, in)
				_ = reads
				if writes {
					if mgr.HasSummaries() {
						invalidateCallTable(loads, in)
						invalidateCallTable(stored, in)
					} else {
						invalidate(nil, 0)
					}
				}

			case in.Op == ir.OpMustNotAlias:
				// Deduplicate identical facts (annotation macros create
				// many redundant copies).
				a, c := in.Args[0], in.Args[1]
				key := [2]ir.Value{a, c}
				if a2, c2 := c, a; lessValue(a2, a) {
					key = [2]ir.Value{a2, c2}
				}
				if seenFacts[key] {
					removeAt(b, i)
					i--
					removed++
					continue
				}
				seenFacts[key] = true

			case in.Op == ir.OpUBCheck:
				// No memory effects.
			}
		}
	}
	return removed
}

// valueKey builds a structural hash key for pure instructions.
func valueKey(in *ir.Instr) string {
	key := fmt.Sprintf("%d|%d|%d|%d|%d|%d|%t", in.Op, in.Cls, in.Scale, in.Off, in.Pred, in.VecOp, in.Unsigned)
	for _, a := range in.Args {
		key += "|" + argKey(a)
	}
	return key
}

// lessValue is an arbitrary-but-stable order on values for fact
// normalization.
func lessValue(a, b ir.Value) bool { return argKey(a) < argKey(b) }

func argKey(a ir.Value) string {
	switch x := a.(type) {
	case *ir.Const:
		if x.Cls.IsFloat() {
			return fmt.Sprintf("cf%g", x.F)
		}
		return fmt.Sprintf("ci%d", x.I)
	case *ir.Global:
		return "g" + x.Name
	case *ir.Param:
		return fmt.Sprintf("p%d", x.Idx)
	case *ir.FuncRef:
		return "f" + x.Name
	case *ir.Instr:
		return fmt.Sprintf("v%d", x.ID)
	}
	return "?"
}

// instCombine folds algebraic identities and constant expressions; the
// counter maps to the paper's "nodes combined" SelectionDAG statistic.
// It also removes no-op stores (store p, (load p) with no intervening
// write) — the residue the CANT_ALIAS macro's self-assignments leave
// behind, regardless of any aliasing knowledge.
func instCombine(f *ir.Func) int {
	combined := 0
	for _, b := range f.Blocks {
		for i := 0; i < len(b.Instrs); i++ {
			in := b.Instrs[i]
			if v := simplify(in); v != nil {
				replaceUses(f, in, v)
				removeAt(b, i)
				i--
				combined++
			}
		}
		combined += removeNoopStores(b)
	}
	return combined
}

// removeNoopStores deletes `store p, v` where v = load p happened earlier
// in the block with no possible write in between (always sound: the
// memory state cannot have changed).
func removeNoopStores(b *ir.Block) int {
	removed := 0
	for i := 0; i < len(b.Instrs); i++ {
		st := b.Instrs[i]
		if st.Op != ir.OpStore || st.Volatile {
			continue
		}
		ld, ok := st.Args[1].(*ir.Instr)
		if !ok || ld.Op != ir.OpLoad || ld.Args[0] != st.Args[0] || ld.Volatile {
			continue
		}
		// Find the load's position and scan the gap for writes.
		j := -1
		for k := 0; k < i; k++ {
			if b.Instrs[k] == ld {
				j = k
				break
			}
		}
		if j < 0 {
			continue
		}
		clean := true
		for k := j + 1; k < i; k++ {
			if b.Instrs[k].IsMemWrite() {
				clean = false
				break
			}
		}
		if clean {
			removeAt(b, i)
			i--
			removed++
		}
	}
	return removed
}

// simplify returns a replacement value for in, or nil.
func simplify(in *ir.Instr) ir.Value {
	c := func(n int) (*ir.Const, bool) {
		if n < len(in.Args) {
			k, ok := in.Args[n].(*ir.Const)
			return k, ok
		}
		return nil, false
	}
	k0, ok0 := c(0)
	k1, ok1 := c(1)
	switch in.Op {
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr:
		if ok0 && ok1 && !in.Cls.IsFloat() {
			return ir.ConstInt(in.Cls, foldInt(in.Op, k0.I, k1.I, in.Cls, in.Unsigned))
		}
		if ok1 && !k1.Cls.IsFloat() {
			switch {
			case k1.I == 0 && (in.Op == ir.OpAdd || in.Op == ir.OpSub ||
				in.Op == ir.OpOr || in.Op == ir.OpXor || in.Op == ir.OpShl || in.Op == ir.OpShr):
				return in.Args[0]
			case k1.I == 1 && in.Op == ir.OpMul:
				return in.Args[0]
			case k1.I == 0 && (in.Op == ir.OpMul || in.Op == ir.OpAnd):
				return ir.ConstInt(in.Cls, 0)
			}
		}
		if ok0 && !k0.Cls.IsFloat() {
			switch {
			case k0.I == 0 && (in.Op == ir.OpAdd || in.Op == ir.OpOr || in.Op == ir.OpXor):
				return in.Args[1]
			case k0.I == 1 && in.Op == ir.OpMul:
				return in.Args[1]
			case k0.I == 0 && (in.Op == ir.OpMul || in.Op == ir.OpAnd):
				return ir.ConstInt(in.Cls, 0)
			}
		}
	case ir.OpDiv, ir.OpRem:
		// The interpreter traps integer division by zero at runtime, so a
		// zero divisor must never be folded away — the instruction stays
		// and the trap is preserved at every optimization level.
		if ok0 && ok1 && !in.Cls.IsFloat() && !k0.Cls.IsFloat() && !k1.Cls.IsFloat() && k1.I != 0 {
			return ir.ConstInt(in.Cls, ir.FoldInt(in.Op, in.Cls, k0.I, k1.I, in.Unsigned))
		}
		if in.Op == ir.OpDiv && ok1 && !k1.Cls.IsFloat() && k1.I == 1 {
			return in.Args[0]
		}
	case ir.OpNeg:
		if ok0 {
			if k0.Cls.IsFloat() {
				return ir.ConstFloat(in.Cls, -k0.F)
			}
			return ir.ConstInt(in.Cls, ir.TruncInt(in.Cls, -k0.I, in.Unsigned))
		}
	case ir.OpNot:
		if ok0 && !k0.Cls.IsFloat() {
			return ir.ConstInt(in.Cls, ir.TruncInt(in.Cls, ^k0.I, in.Unsigned))
		}
	case ir.OpCmp:
		if ok0 && ok1 && !k0.Cls.IsFloat() && !k1.Cls.IsFloat() {
			// ir.CompareInt is the engines' compare kernel: the Unsigned
			// flag switches Lt/Le/Gt/Ge to unsigned semantics, and the
			// U-preds are unsigned regardless.
			if ir.CompareInt(in.Pred, k0.I, k1.I, in.Unsigned) {
				return ir.ConstInt(ir.I32, 1)
			}
			return ir.ConstInt(ir.I32, 0)
		}
	case ir.OpConvert:
		if ok0 {
			if in.Cls.IsFloat() {
				if k0.Cls.IsFloat() {
					return ir.ConstFloat(in.Cls, k0.F)
				}
				return ir.ConstFloat(in.Cls, float64(k0.I))
			}
			if k0.Cls.IsFloat() {
				// ir.FloatToInt pins the NaN/±Inf/out-of-range cases so the
				// fold matches what both engines execute.
				return ir.ConstInt(in.Cls, ir.TruncInt(in.Cls, ir.FloatToInt(k0.F), in.Unsigned))
			}
			return ir.ConstInt(in.Cls, ir.TruncInt(in.Cls, k0.I, in.Unsigned))
		}
		// A same-class convert is a copy only when the operand is already
		// in this (class, signedness) canonical form — an i32 value in
		// unsigned form converted to signed i32 really does change the
		// register contents (re-extension of the low 32 bits).
		if in.Args[0].Class() == in.Cls {
			if v, exact := canonicalFor(in.Args[0], in.Cls, in.Unsigned); exact {
				return v
			}
		}
	case ir.OpSelect:
		if ok0 && !k0.Cls.IsFloat() {
			if k0.I != 0 {
				return in.Args[1]
			}
			return in.Args[2]
		}
	case ir.OpGEP:
		// gep(base, 0)*s + 0 is the base itself.
		if ok1 && !k1.Cls.IsFloat() && k1.I == 0 && in.Off == 0 {
			return in.Args[0]
		}
	}
	return nil
}

// foldInt delegates to the canonical kernel shared with the interpreter
// (ir.FoldInt): a folded constant must be bit-identical to the value the
// runtime would compute, including truncation to the class width.
func foldInt(op ir.Op, a, b int64, cls ir.Class, unsigned bool) int64 {
	return ir.FoldInt(op, cls, a, b, unsigned)
}
