package passes

import (
	"fmt"
	"runtime/debug"
)

// PanicError is a panic recovered inside one function's pass pipeline.
// Before the flight recorder, a worker panic tore down the whole
// RunModule with a bare stack trace; now the panic is contained to the
// function it hit, attributed to the pass that was executing, and
// propagated through the same source-ordered error aggregation as every
// other pipeline failure. The driver additionally turns it into a
// crash-<unit>.json flight-recorder dump.
type PanicError struct {
	// Func is the function whose pipeline panicked; Pass is the pass
	// that was executing ("" when the panic hit pipeline bookkeeping
	// between passes).
	Func string
	Pass string
	// Value is the recovered panic value; Stack is the goroutine stack
	// captured at the recovery point.
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("internal compiler error: panic in pass %s on function %s: %v",
		e.PassName(), e.Func, e.Value)
}

// PassName returns the attributed pass, naming the between-passes case.
func (e *PanicError) PassName() string {
	if e.Pass == "" {
		return "<between passes>"
	}
	return e.Pass
}

func newPanicError(fn, pass string, v any) *PanicError {
	return &PanicError{Func: fn, Pass: pass, Value: v, Stack: debug.Stack()}
}
