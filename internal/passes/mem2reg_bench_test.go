package passes

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/irgen"
	"repro/internal/ooe"
	"repro/internal/parser"
	"repro/internal/sema"
)

// benchModule lowers src to unoptimized IR (no pass pipeline), so a
// benchmark or unit test can drive a single pass in isolation.
func benchModule(tb testing.TB, src string) *ir.Module {
	tb.Helper()
	tu, perrs := parser.ParseFile("bench.c", src, nil)
	if len(perrs) > 0 {
		tb.Fatalf("parse: %v", perrs[0])
	}
	if serrs := sema.Check(tu); len(serrs) > 0 {
		tb.Fatalf("sema: %v", serrs[0])
	}
	an := ooe.New(ooe.Config{}, ooe.FuncMap(tu))
	reports := an.AnalyzeUnit(tu)
	mod, errs := irgen.Generate(tu, reports, irgen.Options{EmitPredicates: true})
	if len(errs) > 0 {
		tb.Fatalf("irgen: %v", errs[0])
	}
	return mod
}

// mem2regSource builds a function with n once-initialized scalar locals,
// each read several times — every one is a promotable alloca, so the
// pass runs its use-scan to a deep fixpoint.
func mem2regSource(n int) string {
	var sb strings.Builder
	sb.WriteString("int main() {\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "  int v%d = %d;\n", i, i)
	}
	sb.WriteString("  int s = 0;\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "  s = s + v%d + v%d * 2;\n", i, i)
	}
	sb.WriteString("  return s;\n}\n")
	return sb.String()
}

// BenchmarkMem2Reg measures promoting a function with many eligible
// allocas. The interesting cost is the use-map construction: rebuilding
// it per promotion makes the pass quadratic in the number of locals.
func BenchmarkMem2Reg(b *testing.B) {
	for _, n := range []int{16, 64} {
		b.Run(fmt.Sprintf("locals=%d", n), func(b *testing.B) {
			mod := benchModule(b, mem2regSource(n))
			fn := mod.FindFunc("main")
			if fn == nil {
				b.Fatal("no main")
			}
			opts := DefaultOptions()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				clone := ir.CloneFunc(fn)
				am := newAnalysisManager(mod, clone, &opts, nil, nil)
				b.StartTimer()
				mem2reg(clone, am)
			}
		})
	}
}
