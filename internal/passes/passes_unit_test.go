package passes

import (
	"strings"
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
)

// countOps tallies instructions of one opcode across the module.
func countOps(mod *ir.Module, op ir.Op) int {
	n := 0
	for _, f := range mod.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == op {
					n++
				}
			}
		}
	}
	return n
}

func TestMem2RegPromotesParams(t *testing.T) {
	mod, _ := build(t, "int add(int a, int b) { return a + b; } int main() { return add(2, 3); }",
		false, DefaultOptions())
	// After mem2reg (+ inlining may remove add entirely), main's IR must
	// not round-trip the parameters through memory.
	f := mod.FindFunc("main")
	if f == nil {
		t.Fatal("main missing")
	}
	if got := run(t, mod); got != 5 {
		t.Fatalf("result %d", got)
	}
}

func TestMem2RegSkipsAddressTaken(t *testing.T) {
	src := `void set(int *p) { *p = 9; }
int main() { int x = 1; set(&x); return x; }`
	mod, _ := build(t, src, false, DefaultOptions())
	if got := run(t, mod); got != 9 {
		t.Fatalf("address-taken local mis-promoted: %d", got)
	}
}

func TestDSEKeepsObservableStores(t *testing.T) {
	src := `int g;
int peek() { return g; }
int main() {
  g = 1;
  int a = peek();
  g = 2;
  return a * 10 + peek();
}`
	mod, _ := build(t, src, false, DefaultOptions())
	if got := run(t, mod); got != 12 {
		t.Fatalf("DSE removed an observable store: %d", got)
	}
}

func TestDSEKillsAdjacentDeadStores(t *testing.T) {
	src := `int g;
int main() {
  g = 1;
  g = 2;
  g = 3;
  return g;
}`
	mod, st := build(t, src, false, DefaultOptions())
	if got := run(t, mod); got != 3 {
		t.Fatalf("result %d", got)
	}
	if st.StoresDeleted < 2 && countOps(mod, ir.OpStore) > 1 {
		t.Errorf("dead stores survived: deleted=%d stores=%d", st.StoresDeleted, countOps(mod, ir.OpStore))
	}
}

func TestInlineSkipsRecursive(t *testing.T) {
	src := `int fact(int n) { return n <= 1 ? 1 : n * fact(n - 1); }
int main() { return fact(5); }`
	mod, _ := build(t, src, false, DefaultOptions())
	if mod.FindFunc("fact") == nil {
		t.Error("recursive function must not be deleted")
	}
	if got := run(t, mod); got != 120 {
		t.Fatalf("result %d", got)
	}
}

func TestInlineThresholdRespected(t *testing.T) {
	var body strings.Builder
	for i := 0; i < 60; i++ {
		body.WriteString("  x = x * 3 + 1;\n  x = x ^ (x >> 2);\n")
	}
	src := "int big(int x) {\n" + body.String() + "  return x;\n}\nint main() { return big(3) & 0xFF; }"
	opts := DefaultOptions()
	opts.InlineThreshold = 10
	mod, st := build(t, src, false, opts)
	if st.CallsInlined != 0 {
		t.Errorf("function above the threshold was inlined")
	}
	if mod.FindFunc("big") == nil {
		t.Error("big must survive")
	}
	run(t, mod)
}

func TestMemcpyOptNeedsSameValue(t *testing.T) {
	// Different stored constants must NOT merge into a memset.
	src := `struct R { long a; long b; };
struct R r;
int main() {
  r.a = 1;
  r.b = 2;
  return (int)(r.a + r.b);
}`
	mod, st := build(t, src, false, DefaultOptions())
	if st.MemsetsFormed != 0 {
		t.Errorf("memset formed over differing values")
	}
	if got := run(t, mod); got != 3 {
		t.Fatalf("result %d", got)
	}
}

func TestMemcpyOptContiguity(t *testing.T) {
	// A gap in the covered range must block merging.
	src := `struct R { long a; long gap; long b; };
struct R r;
int main() {
  r.gap = 7;
  r.a = 0;
  r.b = 0;
  return (int)(r.a + r.gap + r.b);
}`
	mod, st := build(t, src, false, DefaultOptions())
	_ = st // merging a and b would clobber gap
	if got := run(t, mod); got != 7 {
		t.Fatalf("gap clobbered: %d", got)
	}
}

func TestSimplifyCFGFoldsConstantBranch(t *testing.T) {
	src := `int main() {
  int r = 0;
  if (1) r = 5; else r = 9;
  return r;
}`
	mod, _ := build(t, src, false, DefaultOptions())
	f := mod.FindFunc("main")
	if len(f.Blocks) != 1 {
		t.Errorf("constant branch should collapse main to one block, got %d\n%s", len(f.Blocks), f)
	}
	if got := run(t, mod); got != 5 {
		t.Fatalf("result %d", got)
	}
}

func TestDCERemovesDeadChain(t *testing.T) {
	src := `int main() {
  int dead1 = 5;
  int dead2 = dead1 * 3;
  int dead3 = dead2 + dead1;
  return 7;
}`
	mod, _ := build(t, src, false, DefaultOptions())
	f := mod.FindFunc("main")
	// After optimization main should be (near) minimal: ret 7.
	if n := f.NumInstrs(); n > 2 {
		t.Errorf("dead chain survived: %d instrs\n%s", n, f)
	}
	if got := run(t, mod); got != 7 {
		t.Fatalf("result %d", got)
	}
}

func TestNoopStoreElimination(t *testing.T) {
	// The CANT_ALIAS residue: store p, (load p).
	src := `int g;
int main() {
  g = g;
  g = g;
  g = 4;
  return g;
}`
	mod, _ := build(t, src, false, DefaultOptions())
	if got := run(t, mod); got != 4 {
		t.Fatalf("result %d", got)
	}
	if n := countOps(mod, ir.OpStore); n > 1 {
		t.Errorf("no-op stores survived: %d", n)
	}
}

func TestUnrollPreservesShortTrips(t *testing.T) {
	// Trip counts below the unroll factor must still compute correctly
	// (the remainder loop handles everything).
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7} {
		src := "int main() { int s = 0; for (int i = 0; i < " +
			itoa(n) + "; i++) s += i + 1; return s; }"
		want := int64(n * (n + 1) / 2)
		mod, _ := build(t, src, false, DefaultOptions())
		if got := run(t, mod); got != want {
			t.Errorf("n=%d: got %d want %d", n, got, want)
		}
	}
}

func TestVectorizeShortTrips(t *testing.T) {
	for _, n := range []int{0, 1, 3, 4, 5, 8, 9} {
		src := `double a[16], b[16];
int main() {
  for (int i = 0; i < 16; i++) b[i] = (double)i;
  for (int i = 0; i < ` + itoa(n) + `; i++) a[i] = b[i] * 3.0;
  double s = 0.0;
  for (int i = 0; i < 16; i++) s += a[i];
  return (int)s;
}`
		want := int64(3 * (n * (n - 1) / 2))
		mod, _ := build(t, src, true, DefaultOptions())
		if got := run(t, mod); got != want {
			t.Errorf("n=%d: got %d want %d", n, got, want)
		}
	}
}

// TestPipelineIdempotent: running the pipeline twice must not change the
// result (fixed-point sanity).
func TestPipelineIdempotent(t *testing.T) {
	src := `double a[32], b[32];
int main() {
  for (int i = 0; i < 32; i++) b[i] = (double)(i % 5);
  double s = 0.0;
  for (int i = 0; i < 32; i++) s += b[i] * 2.0;
  return (int)s;
}`
	mod, _ := build(t, src, true, DefaultOptions())
	before := run(t, mod)
	if _, err := RunModule(mod, DefaultOptions(), nil); err != nil {
		t.Fatalf("second RunModule: %v", err)
	}
	if problems := mod.Verify(); len(problems) > 0 {
		t.Fatalf("second pipeline run broke the IR: %v", problems[0])
	}
	after := run(t, mod)
	if before != after {
		t.Errorf("pipeline not idempotent: %d vs %d", before, after)
	}
}

// TestCyclesDeterministic: the simulated cycle count is a pure function
// of the module.
func TestCyclesDeterministic(t *testing.T) {
	src := `int main() { int s = 0; for (int i = 0; i < 40; i++) s += i; return s; }`
	mod, _ := build(t, src, true, DefaultOptions())
	m1 := interp.New(mod, interp.DefaultCosts())
	m2 := interp.New(mod, interp.DefaultCosts())
	if _, err := m1.RunMain(); err != nil {
		t.Fatal(err)
	}
	if _, err := m2.RunMain(); err != nil {
		t.Fatal(err)
	}
	if m1.Cycles != m2.Cycles {
		t.Errorf("cycles differ: %v vs %v", m1.Cycles, m2.Cycles)
	}
}
