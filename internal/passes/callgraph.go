package passes

import (
	"fmt"
	"strings"

	"repro/internal/ir"
)

// CallGraph is the module's static call graph, shared by the -j
// scheduler (reachability decides which callee bodies must be finished
// vs. snapshotted) and the bottom-up summary pass (SCC order decides
// when a callee's mod/ref facts are final). Edges come from direct
// calls and from function references used as values in the original
// (pre-pipeline) bodies; optimization never introduces a callee outside
// this closure, because inlining only splices bodies of functions the
// graph already reaches.
type CallGraph struct {
	mod *ir.Module
	idx map[string]int

	Nodes []*CGNode

	// sccs lists strongly connected components in bottom-up order:
	// every callee of a component's members is either inside the
	// component or in an earlier one. Singleton components with a
	// self-edge are recursive.
	sccs [][]int
}

// CGNode is one function's adjacency.
type CGNode struct {
	Fn *ir.Func
	// Callees are module-function indices in first-occurrence order,
	// deduplicated.
	Callees []int
	// Externals are direct callee names with no body in the module
	// (library calls), deduplicated in first-occurrence order.
	Externals []string
	// Indirect marks a call through a function pointer: the possible
	// callees are unknown, so summary clients must degrade to ⊤.
	Indirect bool
	// Recursive marks membership in a multi-node SCC or a self-edge.
	Recursive bool
	// SCC is the index of this node's component in SCCs() order.
	SCC int
}

// BuildCallGraph scans mod's current bodies.
func BuildCallGraph(mod *ir.Module) *CallGraph {
	n := len(mod.Funcs)
	cg := &CallGraph{
		mod:   mod,
		idx:   make(map[string]int, n),
		Nodes: make([]*CGNode, n),
	}
	for i, f := range mod.Funcs {
		cg.idx[f.Name] = i
	}
	for i, f := range mod.Funcs {
		node := &CGNode{Fn: f}
		seen := map[int]bool{}
		seenExt := map[string]bool{}
		add := func(name string) {
			if j, ok := cg.idx[name]; ok {
				if !seen[j] {
					seen[j] = true
					node.Callees = append(node.Callees, j)
				}
			} else if !seenExt[name] {
				seenExt[name] = true
				node.Externals = append(node.Externals, name)
			}
		}
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpCall {
					if in.Callee != "" {
						add(in.Callee)
					} else {
						node.Indirect = true
					}
				}
				for _, a := range in.Args {
					if fr, ok := a.(*ir.FuncRef); ok {
						add(fr.Name)
					}
				}
			}
		}
		cg.Nodes[i] = node
	}
	cg.computeSCCs()
	return cg
}

// Index returns the module index of the named function, or -1.
func (cg *CallGraph) Index(name string) int {
	if i, ok := cg.idx[name]; ok {
		return i
	}
	return -1
}

// computeSCCs runs Tarjan's algorithm. The natural emission order of
// Tarjan — a component is emitted only after every component it can
// reach — is exactly the bottom-up order the summary pass needs.
func (cg *CallGraph) computeSCCs() {
	n := len(cg.Nodes)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	next := 0

	// Iterative Tarjan: frame.ci is the next callee edge to visit.
	type frame struct{ v, ci int }
	var dfs []frame
	push := func(v int) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		dfs = append(dfs, frame{v: v})
	}
	for root := 0; root < n; root++ {
		if index[root] != -1 {
			continue
		}
		push(root)
		for len(dfs) > 0 {
			fr := &dfs[len(dfs)-1]
			v := fr.v
			if fr.ci < len(cg.Nodes[v].Callees) {
				w := cg.Nodes[v].Callees[fr.ci]
				fr.ci++
				if index[w] == -1 {
					push(w)
				} else if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
				continue
			}
			if low[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				// Reverse pop order so members list in module order-ish
				// (DFS discovery order), keeping dumps stable.
				for l, r := 0, len(comp)-1; l < r; l, r = l+1, r-1 {
					comp[l], comp[r] = comp[r], comp[l]
				}
				scc := len(cg.sccs)
				recursive := len(comp) > 1
				for _, w := range comp {
					cg.Nodes[w].SCC = scc
					if !recursive {
						for _, c := range cg.Nodes[w].Callees {
							if c == w {
								recursive = true
							}
						}
					}
				}
				for _, w := range comp {
					cg.Nodes[w].Recursive = recursive
				}
				cg.sccs = append(cg.sccs, comp)
			}
			dfs = dfs[:len(dfs)-1]
			if len(dfs) > 0 {
				p := dfs[len(dfs)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
		}
	}
}

// SCCs returns the strongly connected components in bottom-up order
// (callees before callers). Each component holds module function
// indices.
func (cg *CallGraph) SCCs() [][]int { return cg.sccs }

// BottomUp returns the functions grouped by SCC in bottom-up order.
func (cg *CallGraph) BottomUp() [][]*ir.Func {
	out := make([][]*ir.Func, len(cg.sccs))
	for i, comp := range cg.sccs {
		fns := make([]*ir.Func, len(comp))
		for j, v := range comp {
			fns[j] = cg.Nodes[v].Fn
		}
		out[i] = fns
	}
	return out
}

// Reachable returns, for every function index, the set of function
// indices transitively reachable through the graph's edges — the
// visibility relation the -j scheduler orders workers by.
func (cg *CallGraph) Reachable() []map[int]struct{} {
	n := len(cg.Nodes)
	reach := make([]map[int]struct{}, n)
	for i := 0; i < n; i++ {
		r := make(map[int]struct{})
		stack := append([]int(nil), cg.Nodes[i].Callees...)
		for len(stack) > 0 {
			j := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if _, ok := r[j]; ok {
				continue
			}
			r[j] = struct{}{}
			stack = append(stack, cg.Nodes[j].Callees...)
		}
		reach[i] = r
	}
	return reach
}

// String renders the graph for -print-callgraph: per-function edges,
// then the bottom-up SCC order the summary pass runs in.
func (cg *CallGraph) String() string {
	var b strings.Builder
	b.WriteString("callgraph:\n")
	for _, node := range cg.Nodes {
		b.WriteString("  " + node.Fn.Name + " ->")
		if len(node.Callees) == 0 && len(node.Externals) == 0 && !node.Indirect {
			b.WriteString(" (leaf)")
		}
		for _, c := range node.Callees {
			b.WriteString(" " + cg.Nodes[c].Fn.Name)
		}
		for _, e := range node.Externals {
			b.WriteString(" " + e + "(extern)")
		}
		if node.Indirect {
			b.WriteString(" <indirect>")
		}
		if node.Recursive {
			b.WriteString(" [recursive]")
		}
		b.WriteByte('\n')
	}
	b.WriteString("bottom-up SCC order:\n")
	for i, comp := range cg.sccs {
		names := make([]string, len(comp))
		for j, v := range comp {
			names[j] = cg.Nodes[v].Fn.Name
		}
		fmt.Fprintf(&b, "  scc %d: {%s}\n", i, strings.Join(names, ", "))
	}
	return b.String()
}
