package passes

import (
	"repro/internal/aa"
	"repro/internal/ir"
	"repro/internal/telemetry"
)

// pendingStore tracks a store not yet proven observable during the
// backward DSE walk. unseqKept/meta record that an unseq-aa NoAlias
// answer was what disproved an intervening read — the attribution an
// eventual StoreDeleted remark carries.
type pendingStore struct {
	idx       int
	ptr       ir.Value
	size      int
	unseqKept bool
	meta      int
}

// dse removes stores whose value is overwritten before any possible read
// — block-local, AA-driven. This is the pass the paper credits for the
// perlbench PL_savestack_ix and x264 getU32 wins: the side effect on the
// index is unsequenced with the surrounding accesses, so unseq-aa lets
// the intermediate stores die.
func dse(mod *ir.Module, f *ir.Func, mgr *aa.Manager, tel *telemetry.Session) int {
	deleted := 0
	for _, b := range f.Blocks {
		var pending []pendingStore
		kill := map[int]bool{}
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			in := b.Instrs[i]
			switch in.Op {
			case ir.OpStore:
				if in.Volatile {
					pending = nil
					continue
				}
				ptr, size := in.Args[0], accessSize(in)
				// If a later (already-seen) store must-alias this one and
				// nothing between may read it, this store is dead.
				for _, p := range pending {
					if p.size == size &&
						mgr.Alias(aa.Location{Ptr: ptr, Size: size},
							aa.Location{Ptr: p.ptr, Size: p.size}) == aa.MustAlias {
						kill[i] = true
						if tel.RemarksEnabled() {
							tel.Remark(telemetry.Remark{
								Pass: "dse", Function: f.Name, Loc: b.Name,
								Kind:             "StoreDeleted",
								EnabledByUnseqAA: p.unseqKept,
								PredicateMeta:    p.meta,
							})
						}
						break
					}
				}
				if !kill[i] {
					pending = append(pending, pendingStore{idx: i, ptr: ptr, size: size})
				}
			case ir.OpLoad, ir.OpVecLoad, ir.OpMemcpy:
				ptr, size := memLoc(in)
				pending = dropObserved(pending, mgr, ptr, size)
			case ir.OpVecStore, ir.OpMemset:
				// Conservative: vector stores/memsets neither kill scalar
				// stores here nor read memory.
			case ir.OpCall:
				reads, writes := callEffects(mod, in)
				if !reads && !writes {
					continue
				}
				if !mgr.HasSummaries() {
					pending = nil
					continue
				}
				// Only a possible read makes a pending store observable.
				// A call that merely may write the slot leaves the
				// pending store exactly as dead as a later must-alias
				// store does: its value is still never loaded.
				out := pending[:0]
				for _, p := range pending {
					if mgr.CallModRef(in, aa.Location{Ptr: p.ptr, Size: p.size})&aa.RefEffect == 0 {
						if att := mgr.Last(); att.UnseqDecided && !p.unseqKept {
							p.unseqKept = true
							p.meta = att.PredicateMeta
						}
						out = append(out, p)
					}
				}
				pending = out
			case ir.OpUBCheck, ir.OpMustNotAlias:
				// Use only the pointer values, not memory contents.
			}
		}
		if len(kill) > 0 {
			var out []*ir.Instr
			for i, in := range b.Instrs {
				if kill[i] {
					deleted++
					continue
				}
				out = append(out, in)
			}
			b.Instrs = out
		}
	}
	return deleted
}

// dropObserved removes pending stores that the given read may observe.
// Stores that survive only thanks to an unseq-aa NoAlias answer are
// tagged so the eventual StoreDeleted remark attributes the deletion.
func dropObserved(pending []pendingStore, mgr *aa.Manager, readPtr ir.Value, readSize int) []pendingStore {
	out := pending[:0]
	for _, p := range pending {
		if mgr.Alias(aa.Location{Ptr: p.ptr, Size: p.size},
			aa.Location{Ptr: readPtr, Size: readSize}) == aa.NoAlias {
			if att := mgr.Last(); att.UnseqDecided && !p.unseqKept {
				p.unseqKept = true
				p.meta = att.PredicateMeta
			}
			out = append(out, p)
		}
	}
	return out
}
