package passes

import (
	"repro/internal/aa"
	"repro/internal/ir"
)

// pendingStore tracks a store not yet proven observable during the
// backward DSE walk.
type pendingStore struct {
	idx  int
	ptr  ir.Value
	size int
}

// dse removes stores whose value is overwritten before any possible read
// — block-local, AA-driven. This is the pass the paper credits for the
// perlbench PL_savestack_ix and x264 getU32 wins: the side effect on the
// index is unsequenced with the surrounding accesses, so unseq-aa lets
// the intermediate stores die.
func dse(f *ir.Func, mgr *aa.Manager) int {
	deleted := 0
	mod := moduleOf(f)
	for _, b := range f.Blocks {
		var pending []pendingStore
		kill := map[int]bool{}
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			in := b.Instrs[i]
			switch in.Op {
			case ir.OpStore:
				if in.Volatile {
					pending = nil
					continue
				}
				ptr, size := in.Args[0], accessSize(in)
				// If a later (already-seen) store must-alias this one and
				// nothing between may read it, this store is dead.
				for _, p := range pending {
					if p.size == size &&
						mgr.Alias(aa.Location{Ptr: ptr, Size: size},
							aa.Location{Ptr: p.ptr, Size: p.size}) == aa.MustAlias {
						kill[i] = true
						break
					}
				}
				if !kill[i] {
					pending = append(pending, pendingStore{idx: i, ptr: ptr, size: size})
				}
			case ir.OpLoad, ir.OpVecLoad, ir.OpMemcpy:
				ptr, size := memLoc(in)
				pending = dropObserved(pending, mgr, ptr, size)
			case ir.OpVecStore, ir.OpMemset:
				// Conservative: vector stores/memsets neither kill scalar
				// stores here nor read memory.
			case ir.OpCall:
				reads, writes := callEffects(mod, in)
				if reads || writes {
					pending = nil
				}
			case ir.OpUBCheck, ir.OpMustNotAlias:
				// Use only the pointer values, not memory contents.
			}
		}
		if len(kill) > 0 {
			var out []*ir.Instr
			for i, in := range b.Instrs {
				if kill[i] {
					deleted++
					continue
				}
				out = append(out, in)
			}
			b.Instrs = out
		}
	}
	return deleted
}

// dropObserved removes pending stores that the given read may observe.
func dropObserved(pending []pendingStore, mgr *aa.Manager, readPtr ir.Value, readSize int) []pendingStore {
	out := pending[:0]
	for _, p := range pending {
		if mgr.Alias(aa.Location{Ptr: p.ptr, Size: p.size},
			aa.Location{Ptr: readPtr, Size: readSize}) == aa.NoAlias {
			out = append(out, p)
		}
	}
	return out
}
