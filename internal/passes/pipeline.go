package passes

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ir"
)

// Pass is one middle-end transformation. Run optimizes f, acquiring any
// analyses it needs from am, and returns the statistics it accumulated
// plus the set of analyses still valid afterwards. Passes are stateless;
// tuning knobs come from am.Options().
type Pass interface {
	Name() string
	Run(f *ir.Func, am *AnalysisManager) (Stats, Preserved)
}

// DefaultPipelineSpec is the textual form of the O3 pipeline — the
// same pass sequence the pre-pass-manager runFunc hardcoded. One
// fixpoint iteration runs the comma-separated passes in order.
const DefaultPipelineSpec = "simplifycfg,mem2reg,earlycse,instcombine,inline," +
	"simplifycfg,mem2reg,earlycse,licm,dce,vectorize,unroll," +
	"earlycse,dse,memcpyopt,dce,simplifycfg"

// Pipeline is a parsed pass sequence — the pipeline-as-data object the
// sequential and parallel executors both consume.
type Pipeline struct {
	passes []Pass
}

// Passes returns the pass sequence.
func (p *Pipeline) Passes() []Pass { return p.passes }

// String renders the pipeline back to its spec form; the round-trip
// ParsePipeline(p.String()) reproduces p.
func (p *Pipeline) String() string {
	names := make([]string, len(p.passes))
	for i, ps := range p.passes {
		names[i] = ps.Name()
	}
	return strings.Join(names, ",")
}

// passRegistry maps spec names to their (stateless) pass singletons.
var passRegistry = map[string]Pass{
	"simplifycfg": simplifyCFGPass{},
	"mem2reg":     mem2regPass{},
	"earlycse":    earlyCSEPass{},
	"instcombine": instCombinePass{},
	"inline":      inlinePass{},
	"licm":        licmPass{},
	"dce":         dcePass{},
	"vectorize":   vectorizePass{},
	"unroll":      unrollPass{},
	"dse":         dsePass{},
	"memcpyopt":   memcpyOptPass{},
}

// RegisteredPasses lists every pass name ParsePipeline accepts, sorted.
func RegisteredPasses() []string {
	names := make([]string, 0, len(passRegistry))
	for n := range passRegistry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ParsePipeline parses a comma-separated pass spec ("simplifycfg,
// mem2reg,earlycse,..."). Whitespace around names is ignored; empty
// elements and unknown names are errors.
func ParsePipeline(spec string) (*Pipeline, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("passes: empty pipeline spec")
	}
	parts := strings.Split(spec, ",")
	p := &Pipeline{passes: make([]Pass, 0, len(parts))}
	for _, part := range parts {
		name := strings.TrimSpace(part)
		if name == "" {
			return nil, fmt.Errorf("passes: empty pass name in spec %q", spec)
		}
		pass, ok := passRegistry[name]
		if !ok {
			return nil, fmt.Errorf("passes: unknown pass %q (known: %s)",
				name, strings.Join(RegisteredPasses(), ", "))
		}
		p.passes = append(p.passes, pass)
	}
	return p, nil
}

// NewPipeline builds a pipeline from an explicit pass sequence. It
// exists for callers that need passes outside the spec registry —
// chiefly tests injecting synthetic passes (e.g. the crash-recovery
// tests' deliberately panicking pass).
func NewPipeline(ps ...Pass) *Pipeline {
	return &Pipeline{passes: append([]Pass(nil), ps...)}
}

// DefaultPipeline returns the parsed DefaultPipelineSpec.
func DefaultPipeline() *Pipeline {
	p, err := ParsePipeline(DefaultPipelineSpec)
	if err != nil {
		panic("passes: invalid DefaultPipelineSpec: " + err.Error())
	}
	return p
}

// ---------- pass adapters ----------
//
// Static Preserved declarations encode two different guarantees:
//
//   - Dom/Loops survive any pass that cannot change the CFG (moving,
//     inserting, or deleting instructions inside existing blocks leaves
//     the dominator tree and loop forest content-identical).
//   - AA survives earlycse and dse by *schedule design*, mirroring the
//     explicit refresh points of the original hardcoded pipeline: dse
//     and memcpyopt deliberately consume the chain refreshed before the
//     preceding earlycse, and licm consumes the chain refreshed before
//     the earlycse that runs just before it.
//
// On top of that, dynPreserve upgrades Dom/Loops/Uses for any pass that
// reports zero changes (see its comment for why AA is excluded). licm
// never upgrades: its internal CSE round can mutate the function even
// when the hoist/promote counters are both zero.

type simplifyCFGPass struct{}

func (simplifyCFGPass) Name() string { return "simplifycfg" }
func (simplifyCFGPass) Run(f *ir.Func, am *AnalysisManager) (Stats, Preserved) {
	n := simplifyCFG(f)
	return Stats{BlocksMerged: n}, dynPreserve(PreserveNone, n)
}

type mem2regPass struct{}

func (mem2regPass) Name() string { return "mem2reg" }
func (mem2regPass) Run(f *ir.Func, am *AnalysisManager) (Stats, Preserved) {
	// Promotion deletes and rewrites instructions but never touches the
	// CFG; its final fixpoint round leaves the use-list cache exact.
	mem2reg(f, am)
	return Stats{}, Preserve(AnalysisDom, AnalysisLoops, AnalysisUses)
}

type earlyCSEPass struct{}

func (earlyCSEPass) Name() string { return "earlycse" }
func (earlyCSEPass) Run(f *ir.Func, am *AnalysisManager) (Stats, Preserved) {
	n := earlyCSE(am.Module(), f, am.AA(), am.Telemetry())
	return Stats{CSESimplified: n}, dynPreserve(Preserve(AnalysisDom, AnalysisLoops, AnalysisAA), n)
}

type instCombinePass struct{}

func (instCombinePass) Name() string { return "instcombine" }
func (instCombinePass) Run(f *ir.Func, am *AnalysisManager) (Stats, Preserved) {
	n := instCombine(f)
	return Stats{NodesCombined: n}, dynPreserve(Preserve(AnalysisDom, AnalysisLoops), n)
}

type inlinePass struct{}

func (inlinePass) Name() string { return "inline" }
func (inlinePass) Run(f *ir.Func, am *AnalysisManager) (Stats, Preserved) {
	n := inlineCalls(am.Module(), am.Resolve, f, am.Options().InlineThreshold, am.Telemetry())
	return Stats{CallsInlined: n}, dynPreserve(PreserveNone, n)
}

type licmPass struct{}

func (licmPass) Name() string { return "licm" }
func (licmPass) Run(f *ir.Func, am *AnalysisManager) (Stats, Preserved) {
	h, p := licm(f, am)
	return Stats{LICMHoisted: h, LICMPromoted: p}, Preserve(AnalysisDom, AnalysisLoops)
}

type dcePass struct{}

func (dcePass) Name() string { return "dce" }
func (dcePass) Run(f *ir.Func, am *AnalysisManager) (Stats, Preserved) {
	n := dce(f)
	return Stats{DCERemoved: n}, dynPreserve(Preserve(AnalysisDom, AnalysisLoops), n)
}

type vectorizePass struct{}

func (vectorizePass) Name() string { return "vectorize" }
func (vectorizePass) Run(f *ir.Func, am *AnalysisManager) (Stats, Preserved) {
	o := am.Options()
	budget := 0
	if o.UseUnseqAA {
		budget = o.MemcheckThreshold
	}
	n := vectorizeLoopsOpt(f, am, o.VectorWidth, budget)
	return Stats{LoopsVectorized: n}, dynPreserve(PreserveNone, n)
}

type unrollPass struct{}

func (unrollPass) Name() string { return "unroll" }
func (unrollPass) Run(f *ir.Func, am *AnalysisManager) (Stats, Preserved) {
	n := unrollLoops(f, am, am.Options().UnrollFactor)
	return Stats{LoopsUnrolled: n}, dynPreserve(PreserveNone, n)
}

type dsePass struct{}

func (dsePass) Name() string { return "dse" }
func (dsePass) Run(f *ir.Func, am *AnalysisManager) (Stats, Preserved) {
	n := dse(am.Module(), f, am.AA(), am.Telemetry())
	return Stats{StoresDeleted: n}, dynPreserve(Preserve(AnalysisDom, AnalysisLoops, AnalysisAA), n)
}

type memcpyOptPass struct{}

func (memcpyOptPass) Name() string { return "memcpyopt" }
func (memcpyOptPass) Run(f *ir.Func, am *AnalysisManager) (Stats, Preserved) {
	n := memcpyOpt(am.Module(), f, am.AA(), am.Telemetry())
	return Stats{MemsetsFormed: n}, dynPreserve(Preserve(AnalysisDom, AnalysisLoops), n)
}
