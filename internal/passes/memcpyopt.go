package passes

import (
	"repro/internal/aa"
	"repro/internal/ir"
	"repro/internal/telemetry"
)

// memcpyOpt merges runs of adjacent constant stores off the same base
// pointer into a single memset — the transform behind the paper's gcc
// cfglayout.c case study (bb->il.rtl->header = bb->il.rtl->footer = NULL
// becomes one 16-byte memset). A run must be contiguous in the block with
// no intervening instruction that may read or write the covered range.
func memcpyOpt(mod *ir.Module, f *ir.Func, mgr *aa.Manager, tel *telemetry.Session) int {
	formed := 0
	for _, b := range f.Blocks {
		for i := 0; i < len(b.Instrs); i++ {
			// Attribution window for this run's clobber queries.
			mgr.ResetWindow()
			run := collectStoreRun(mod, mgr, b, i)
			if len(run) < 2 {
				continue
			}
			first := b.Instrs[run[0]]
			base, lo, size, val := storeKey(first)
			hi := lo + size
			for _, ri := range run[1:] {
				st := b.Instrs[ri]
				_, off, sz, _ := storeKey(st)
				if off < lo {
					lo = off
				}
				if off+sz > hi {
					hi = off + sz
				}
			}
			// Replace the first store with a memset; delete the rest.
			gep := &ir.Instr{Op: ir.OpGEP, Cls: ir.Ptr,
				Args: []ir.Value{base, ir.ConstInt(ir.I64, 0)}, Scale: 1, Off: lo, Span: first.Span}
			ms := &ir.Instr{Op: ir.OpMemset, Cls: ir.Void, Scale: size,
				Args: []ir.Value{gep, val, ir.ConstInt(ir.I64, int64(hi-lo))}, Span: first.Span}
			b.InsertBefore(run[0], gep)
			b.InsertBefore(run[0]+1, ms)
			// Indices shifted by 2 after the inserts.
			kill := map[int]bool{}
			for _, ri := range run {
				kill[ri+2] = true
			}
			var out []*ir.Instr
			for n, in := range b.Instrs {
				if kill[n] {
					continue
				}
				out = append(out, in)
			}
			b.Instrs = out
			formed++
			emitRemark(tel, mgr, "memcpyopt", "MemsetFormed", f.Name, b.Name)
		}
	}
	return formed
}

// storeKey decomposes a constant store to (base, constOffset, size, val);
// ok==size>0.
func storeKey(in *ir.Instr) (base ir.Value, off, size int, val ir.Value) {
	if in.Op != ir.OpStore || in.Volatile {
		return nil, 0, 0, nil
	}
	c, ok := in.Args[1].(*ir.Const)
	if !ok {
		return nil, 0, 0, nil
	}
	size = in.Args[1].Class().Size()
	ptr := in.Args[0]
	off = 0
	for {
		g, ok := ptr.(*ir.Instr)
		if !ok || g.Op != ir.OpGEP {
			break
		}
		idx, ok := g.Args[1].(*ir.Const)
		if !ok {
			return nil, 0, 0, nil
		}
		off += g.Off + int(idx.I)*g.Scale
		ptr = g.Args[0]
	}
	return ptr, off, size, c
}

// collectStoreRun finds maximal runs of same-base same-constant adjacent
// stores starting at index i, allowing only pure value instructions in
// between.
func collectStoreRun(mod *ir.Module, mgr *aa.Manager, b *ir.Block, i int) []int {
	first := b.Instrs[i]
	base, off0, size, val := storeKey(first)
	if base == nil || size == 0 {
		return nil
	}
	covered := map[int]bool{off0: true}
	run := []int{i}
	c0 := val.(*ir.Const)
	for j := i + 1; j < len(b.Instrs); j++ {
		in := b.Instrs[j]
		if isPureValueOp(in) || in.Op == ir.OpMustNotAlias {
			continue
		}
		if in.Op == ir.OpCall {
			// A call proven (via its interprocedural summary) to neither
			// read nor write anywhere in base's object cannot observe the
			// reordered stores or clobber the covered range; anything
			// weaker terminates the run.
			if r, w := callModRef(mod, mgr, in, aa.Location{Ptr: base, Size: aa.WholeObject}); !r && !w {
				continue
			}
			break
		}
		b2, off, sz, v2 := storeKey(in)
		if b2 == nil || b2 != base || sz != size {
			break
		}
		c2 := v2.(*ir.Const)
		if c2.I != c0.I || c2.Cls.IsFloat() != c0.Cls.IsFloat() || c2.F != c0.F {
			break
		}
		// Must extend the covered range contiguously on either side.
		if covered[off-size] || covered[off+size] {
			if covered[off] {
				break // duplicate store to the same slot: leave to DSE
			}
			covered[off] = true
			run = append(run, j)
			continue
		}
		break
	}
	if len(run) < 2 {
		return nil
	}
	return run
}
