// Package cpp implements a minimal C preprocessor over the lexer's token
// stream: object-like and function-like #define, #undef, #include from an
// in-memory file set, #if 0 / #ifdef / #ifndef / #else / #endif with
// constant-only conditions, and recursive macro expansion with the usual
// self-reference cutoff.
//
// This is deliberately a small subset — just enough to preprocess the
// paper's workloads (the CANT_ALIAS macro, SPEC-derived snippets that use
// function-like macros such as SSPOPINT, and Polybench kernels).
package cpp

import (
	"fmt"
	"strconv"

	"repro/internal/lexer"
	"repro/internal/telemetry"
	"repro/internal/token"
)

// Macro is a preprocessor macro definition.
type Macro struct {
	Name     string
	Params   []string // nil for object-like macros
	IsFunc   bool
	Body     []token.Token
	Variadic bool
}

// Error is a preprocessing error with position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Preprocessor expands a token stream.
type Preprocessor struct {
	files  map[string]string // include name -> source
	macros map[string]*Macro
	errs   []*Error
	depth  int

	tel *telemetry.Session
	// MacroExpansions and Includes count expansion work (always
	// maintained; exported to telemetry when a session is attached).
	MacroExpansions int
	Includes        int
}

// New returns a Preprocessor that resolves #include "name" against files.
func New(files map[string]string) *Preprocessor {
	return &Preprocessor{
		files:  files,
		macros: make(map[string]*Macro),
	}
}

// Errors returns accumulated preprocessing errors.
func (p *Preprocessor) Errors() []*Error { return p.errs }

// SetTelemetry attaches a session: Process brackets preprocessing in a
// phase/parse/cpp span and exports the expansion counters.
func (p *Preprocessor) SetTelemetry(tel *telemetry.Session) { p.tel = tel }

// Define installs a macro programmatically (like -D on a compiler command
// line). body is lexed as C tokens.
func (p *Preprocessor) Define(name, body string) {
	toks, _ := lexer.Tokenize("<predefined>", body)
	p.macros[name] = &Macro{Name: name, Body: toks}
}

// Macros returns the live macro table (for tests).
func (p *Preprocessor) Macros() map[string]*Macro { return p.macros }

func (p *Preprocessor) errorf(pos token.Pos, format string, args ...any) {
	p.errs = append(p.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// lineTok pairs a token with a start-of-line marker.
type lineTok struct {
	tok     token.Token
	newline bool // a newline preceded this token
}

func lexAll(file, src string) ([]lineTok, []*lexer.Error) {
	l := lexer.New(file, src)
	var out []lineTok
	first := true
	for {
		t, nl := l.NextWithNL()
		if first {
			nl = true
			first = false
		}
		out = append(out, lineTok{tok: t, newline: nl})
		if t.Kind == token.EOF {
			break
		}
	}
	return out, l.Errors()
}

// Process preprocesses src (named file) and returns the expanded tokens,
// without the trailing EOF.
func (p *Preprocessor) Process(file, src string) []token.Token {
	stop := p.tel.Span("phase/parse/cpp")
	lts, lerrs := lexAll(file, src)
	for _, e := range lerrs {
		p.errorf(e.Pos, "%s", e.Msg)
	}
	out := p.processTokens(lts)
	stop()
	p.tel.Count("cpp/macro_expansions", int64(p.MacroExpansions))
	p.tel.Count("cpp/includes", int64(p.Includes))
	return out
}

// condState tracks one #if nesting level.
type condState struct {
	active      bool // tokens in this branch are emitted
	takenBranch bool // some branch of this #if chain was already taken
	parentLive  bool
}

func (p *Preprocessor) processTokens(lts []lineTok) []token.Token {
	p.depth++
	defer func() { p.depth-- }()
	if p.depth > 32 {
		p.errorf(token.Pos{}, "include depth exceeded")
		return nil
	}

	var out []token.Token
	var conds []condState
	live := func() bool {
		for _, c := range conds {
			if !c.active {
				return false
			}
		}
		return true
	}

	i := 0
	for i < len(lts) {
		lt := lts[i]
		if lt.tok.Kind == token.EOF {
			break
		}
		// Directive: '#' at start of line.
		if lt.newline && lt.tok.Kind == token.Ident && lt.tok.Text == "#" {
			// Collect directive tokens up to next newline.
			j := i + 1
			var dir []token.Token
			for j < len(lts) && !lts[j].newline && lts[j].tok.Kind != token.EOF {
				dir = append(dir, lts[j].tok)
				j++
			}
			out = append(out, p.directive(dir, lt.tok.Pos, &conds, live())...)
			i = j
			continue
		}
		if !live() {
			i++
			continue
		}
		// Macro expansion.
		if lt.tok.Kind == token.Ident {
			if m, ok := p.macros[lt.tok.Text]; ok {
				consumed, expansion := p.expandMacro(m, lts, i)
				if consumed > 0 {
					p.MacroExpansions++
					out = append(out, expansion...)
					i += consumed
					continue
				}
			}
		}
		out = append(out, lt.tok)
		i++
	}
	if len(conds) != 0 {
		p.errorf(token.Pos{}, "unterminated #if")
	}
	return out
}

// directive handles one preprocessor directive and returns tokens to emit
// (non-empty only for #include).
func (p *Preprocessor) directive(dir []token.Token, pos token.Pos, conds *[]condState, live bool) []token.Token {
	if len(dir) == 0 {
		return nil // null directive
	}
	name := dir[0].Text
	if dir[0].Kind.IsKeyword() {
		name = dir[0].Kind.String() // e.g. "if", "else" lex as keywords
	}
	args := dir[1:]
	switch name {
	case "define":
		if live {
			p.define(args, pos)
		}
	case "undef":
		if live && len(args) >= 1 {
			delete(p.macros, args[0].Text)
		}
	case "include":
		if live {
			return p.includeFile(args, pos)
		}
	case "if":
		val := false
		if live {
			val = p.evalCond(args, pos)
		}
		*conds = append(*conds, condState{active: val, takenBranch: val, parentLive: live})
	case "ifdef", "ifndef":
		val := false
		if live && len(args) >= 1 {
			_, defined := p.macros[args[0].Text]
			val = defined == (name == "ifdef")
		}
		*conds = append(*conds, condState{active: val, takenBranch: val, parentLive: live})
	case "elif":
		if len(*conds) == 0 {
			p.errorf(pos, "#elif without #if")
			return nil
		}
		c := &(*conds)[len(*conds)-1]
		if c.takenBranch || !c.parentLive {
			c.active = false
		} else {
			c.active = p.evalCond(args, pos)
			c.takenBranch = c.active
		}
	case "else":
		if len(*conds) == 0 {
			p.errorf(pos, "#else without #if")
			return nil
		}
		c := &(*conds)[len(*conds)-1]
		c.active = c.parentLive && !c.takenBranch
		c.takenBranch = true
	case "endif":
		if len(*conds) == 0 {
			p.errorf(pos, "#endif without #if")
			return nil
		}
		*conds = (*conds)[:len(*conds)-1]
	case "pragma", "error", "warning", "line":
		// Ignored (pragma/line) or only meaningful in dead code for our
		// workloads (error/warning).
	default:
		p.errorf(pos, "unknown preprocessor directive #%s", name)
	}
	return nil
}

// evalCond evaluates a constant #if condition. Supported: integer
// literals, defined(X) / defined X, !, &&, ||, ==, !=, <, >, <=, >=, and
// parentheses. Undefined identifiers evaluate to 0, per C.
func (p *Preprocessor) evalCond(toks []token.Token, pos token.Pos) bool {
	e := &condEval{pp: p, toks: toks}
	v := e.orExpr()
	if e.bad {
		p.errorf(pos, "unsupported #if condition")
		return false
	}
	return v != 0
}

type condEval struct {
	pp   *Preprocessor
	toks []token.Token
	i    int
	bad  bool
}

func (e *condEval) peek() token.Token {
	if e.i < len(e.toks) {
		return e.toks[e.i]
	}
	return token.Token{Kind: token.EOF}
}

func (e *condEval) next() token.Token {
	t := e.peek()
	e.i++
	return t
}

func (e *condEval) orExpr() int64 {
	v := e.andExpr()
	for e.peek().Kind == token.OrOr {
		e.next()
		r := e.andExpr()
		if v != 0 || r != 0 {
			v = 1
		} else {
			v = 0
		}
	}
	return v
}

func (e *condEval) andExpr() int64 {
	v := e.cmpExpr()
	for e.peek().Kind == token.AndAnd {
		e.next()
		r := e.cmpExpr()
		if v != 0 && r != 0 {
			v = 1
		} else {
			v = 0
		}
	}
	return v
}

func (e *condEval) cmpExpr() int64 {
	v := e.unary()
	for {
		k := e.peek().Kind
		switch k {
		case token.EqEq, token.NotEq, token.Lt, token.Gt, token.Le, token.Ge:
			e.next()
			r := e.unary()
			var b bool
			switch k {
			case token.EqEq:
				b = v == r
			case token.NotEq:
				b = v != r
			case token.Lt:
				b = v < r
			case token.Gt:
				b = v > r
			case token.Le:
				b = v <= r
			case token.Ge:
				b = v >= r
			}
			if b {
				v = 1
			} else {
				v = 0
			}
		default:
			return v
		}
	}
}

func (e *condEval) unary() int64 {
	t := e.peek()
	switch t.Kind {
	case token.Not:
		e.next()
		if e.unary() == 0 {
			return 1
		}
		return 0
	case token.Minus:
		e.next()
		return -e.unary()
	case token.LParen:
		e.next()
		v := e.orExpr()
		if e.peek().Kind == token.RParen {
			e.next()
		} else {
			e.bad = true
		}
		return v
	case token.IntLit:
		e.next()
		v, err := strconv.ParseInt(trimIntSuffix(t.Text), 0, 64)
		if err != nil {
			e.bad = true
		}
		return v
	case token.Ident:
		e.next()
		if t.Text == "defined" {
			name := ""
			if e.peek().Kind == token.LParen {
				e.next()
				name = e.next().Text
				if e.peek().Kind == token.RParen {
					e.next()
				}
			} else {
				name = e.next().Text
			}
			if _, ok := e.pp.macros[name]; ok {
				return 1
			}
			return 0
		}
		if m, ok := e.pp.macros[t.Text]; ok && !m.IsFunc && len(m.Body) == 1 && m.Body[0].Kind == token.IntLit {
			v, err := strconv.ParseInt(trimIntSuffix(m.Body[0].Text), 0, 64)
			if err == nil {
				return v
			}
		}
		return 0 // undefined identifiers are 0 in #if
	}
	e.bad = true
	return 0
}

func trimIntSuffix(s string) string {
	for len(s) > 0 {
		c := s[len(s)-1]
		if c == 'u' || c == 'U' || c == 'l' || c == 'L' {
			s = s[:len(s)-1]
			continue
		}
		break
	}
	return s
}

func (p *Preprocessor) define(args []token.Token, pos token.Pos) {
	if len(args) == 0 {
		p.errorf(pos, "#define needs a name")
		return
	}
	name := args[0].Text
	if name == "" {
		name = args[0].Kind.String()
	}
	m := &Macro{Name: name}
	rest := args[1:]
	// Function-like only if '(' immediately follows the name: the lexer
	// has discarded spacing, so approximate with "next token is ( and the
	// param list parses" — standard corpora in this repo always write
	// function-like macros with the open paren adjacent.
	if len(rest) > 0 && rest[0].Kind == token.LParen && args[0].Pos.Col+len(name) == rest[0].Pos.Col {
		m.IsFunc = true
		i := 1
		for i < len(rest) && rest[i].Kind != token.RParen {
			if rest[i].Kind == token.Ident {
				m.Params = append(m.Params, rest[i].Text)
			} else if rest[i].Kind == token.Ellipsis {
				m.Variadic = true
			} else if rest[i].Kind != token.Comma {
				p.errorf(rest[i].Pos, "bad macro parameter list")
			}
			i++
		}
		if i < len(rest) {
			i++ // consume ')'
		}
		m.Body = append(m.Body, rest[i:]...)
	} else {
		m.Body = append(m.Body, rest...)
	}
	p.macros[name] = m
}

func (p *Preprocessor) includeFile(args []token.Token, pos token.Pos) []token.Token {
	if len(args) < 1 {
		p.errorf(pos, "#include needs a file")
		return nil
	}
	var name string
	switch args[0].Kind {
	case token.StringLit:
		name = unquote(args[0].Text)
	case token.Lt:
		// <header> form: join token texts until '>'.
		for _, t := range args[1:] {
			if t.Kind == token.Gt {
				break
			}
			if t.Text != "" {
				name += t.Text
			} else {
				name += t.Kind.String()
			}
		}
	default:
		p.errorf(pos, "bad #include")
		return nil
	}
	src, ok := p.files[name]
	if !ok {
		// System headers are not modelled; includes of unknown files are
		// ignored so workloads can carry decorative <stdio.h> includes.
		return nil
	}
	p.Includes++
	lts, lerrs := lexAll(name, src)
	for _, e := range lerrs {
		p.errorf(e.Pos, "%s", e.Msg)
	}
	return p.processTokens(lts)
}

func unquote(s string) string {
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		return s[1 : len(s)-1]
	}
	return s
}

// expandMacro tries to expand macro m whose name token is at lts[i].
// It returns the number of input lineToks consumed (0 if not applicable,
// e.g. function-like macro without following '(') and the expansion.
func (p *Preprocessor) expandMacro(m *Macro, lts []lineTok, i int) (int, []token.Token) {
	if !m.IsFunc {
		return 1, restamp(p.rescan(m.Body, map[string]bool{m.Name: true}), lts[i].tok.Pos)
	}
	// Function-like: need '(' next.
	j := i + 1
	if j >= len(lts) || lts[j].tok.Kind != token.LParen {
		return 0, nil
	}
	j++
	var cur []token.Token
	var argLists [][]token.Token
	depth := 1
	for j < len(lts) && lts[j].tok.Kind != token.EOF {
		t := lts[j].tok
		switch t.Kind {
		case token.LParen:
			depth++
			cur = append(cur, t)
		case token.RParen:
			depth--
			if depth == 0 {
				argLists = append(argLists, cur)
				j++
				goto done
			}
			cur = append(cur, t)
		case token.Comma:
			if depth == 1 {
				argLists = append(argLists, cur)
				cur = nil
			} else {
				cur = append(cur, t)
			}
		default:
			cur = append(cur, t)
		}
		j++
	}
	p.errorf(lts[i].tok.Pos, "unterminated macro invocation %s", m.Name)
	return 0, nil
done:
	if len(argLists) == 1 && len(argLists[0]) == 0 && len(m.Params) == 0 {
		argLists = nil
	}
	if len(argLists) < len(m.Params) || (len(argLists) > len(m.Params) && !m.Variadic) {
		p.errorf(lts[i].tok.Pos, "macro %s expects %d arguments, got %d",
			m.Name, len(m.Params), len(argLists))
		return j - i, nil
	}
	// Substitute parameters, fully expanding each argument first
	// (argument prescan), then rescan the result.
	argMap := make(map[string][]token.Token, len(m.Params))
	for k, param := range m.Params {
		argMap[param] = p.rescan(argLists[k], nil)
	}
	if m.Variadic {
		var va []token.Token
		for k := len(m.Params); k < len(argLists); k++ {
			if k > len(m.Params) {
				va = append(va, token.Token{Kind: token.Comma})
			}
			va = append(va, argLists[k]...)
		}
		argMap["__VA_ARGS__"] = p.rescan(va, nil)
	}
	// Body tokens take the invocation position (the "presumed location"
	// a compiler reports), so diagnostics and the run-leg profiler's
	// line attribution land on the code the programmer wrote, not on
	// the macro definition. Argument tokens keep their own use-site
	// positions.
	var substituted []token.Token
	for _, t := range m.Body {
		if t.Kind == token.Ident {
			if rep, ok := argMap[t.Text]; ok {
				substituted = append(substituted, rep...)
				continue
			}
		}
		t.Pos = lts[i].tok.Pos
		substituted = append(substituted, t)
	}
	return j - i, p.rescan(substituted, map[string]bool{m.Name: true})
}

// rescan re-expands macros inside toks, suppressing names in hide (the
// self-reference cutoff).
func (p *Preprocessor) rescan(toks []token.Token, hide map[string]bool) []token.Token {
	var out []token.Token
	lts := make([]lineTok, 0, len(toks)+1)
	for _, t := range toks {
		lts = append(lts, lineTok{tok: t})
	}
	lts = append(lts, lineTok{tok: token.Token{Kind: token.EOF}})
	i := 0
	for i < len(lts) && lts[i].tok.Kind != token.EOF {
		t := lts[i].tok
		if t.Kind == token.Ident && !hide[t.Text] {
			if m, ok := p.macros[t.Text]; ok {
				h2 := map[string]bool{t.Text: true}
				for k := range hide {
					h2[k] = true
				}
				consumed, exp := p.expandMacroHidden(m, lts, i, h2)
				if consumed > 0 {
					out = append(out, exp...)
					i += consumed
					continue
				}
			}
		}
		out = append(out, t)
		i++
	}
	return out
}

func (p *Preprocessor) expandMacroHidden(m *Macro, lts []lineTok, i int, hide map[string]bool) (int, []token.Token) {
	// Same as expandMacro but propagating the hide set through rescan.
	if !m.IsFunc {
		return 1, restamp(p.rescan(m.Body, hide), lts[i].tok.Pos)
	}
	consumed, exp := p.expandMacro(m, lts, i)
	return consumed, exp
}

// restamp points macro-body tokens at the expansion site. Without this,
// source attribution (error messages, the profiler's pc→source line
// table) lands on the macro definition line in the header instead of
// the invocation the programmer wrote.
func restamp(toks []token.Token, pos token.Pos) []token.Token {
	for i := range toks {
		toks[i].Pos = pos
	}
	return toks
}
