package cpp

import (
	"strings"
	"testing"

	"repro/internal/token"
)

func expand(t *testing.T, src string) string {
	t.Helper()
	pp := New(nil)
	toks := pp.Process("t.c", src)
	for _, e := range pp.Errors() {
		t.Fatalf("cpp error: %v", e)
	}
	var parts []string
	for _, tok := range toks {
		if tok.Text != "" {
			parts = append(parts, tok.Text)
		} else {
			parts = append(parts, tok.Kind.String())
		}
	}
	return strings.Join(parts, " ")
}

func TestObjectMacro(t *testing.T) {
	got := expand(t, "#define N 10\nint a[N];")
	if got != "int a [ 10 ] ;" {
		t.Errorf("got %q", got)
	}
}

func TestFunctionMacro(t *testing.T) {
	got := expand(t, "#define SQ(x) ((x)*(x))\nSQ(a+b);")
	if got != "( ( a + b ) * ( a + b ) ) ;" {
		t.Errorf("got %q", got)
	}
}

func TestCantAliasMacro(t *testing.T) {
	src := `#define CANT_ALIAS(a,b) ((a=a)&(b=b))
CANT_ALIAS(x, y);`
	got := expand(t, src)
	if got != "( ( x = x ) & ( y = y ) ) ;" {
		t.Errorf("got %q", got)
	}
}

func TestNestedMacro(t *testing.T) {
	got := expand(t, "#define A B\n#define B 42\nA;")
	if got != "42 ;" {
		t.Errorf("got %q", got)
	}
}

func TestSelfReferenceCutoff(t *testing.T) {
	got := expand(t, "#define X X\nX;")
	if got != "X ;" {
		t.Errorf("self-referential macro must not loop: got %q", got)
	}
}

func TestFunctionMacroWithoutParens(t *testing.T) {
	// A function-like macro name not followed by '(' is not expanded.
	got := expand(t, "#define F(x) x\nint F;")
	if got != "int F ;" {
		t.Errorf("got %q", got)
	}
}

func TestUndef(t *testing.T) {
	got := expand(t, "#define N 1\n#undef N\nN;")
	if got != "N ;" {
		t.Errorf("got %q", got)
	}
}

func TestIfdef(t *testing.T) {
	got := expand(t, "#define YES 1\n#ifdef YES\na;\n#else\nb;\n#endif")
	if got != "a ;" {
		t.Errorf("got %q", got)
	}
	got = expand(t, "#ifdef NO\na;\n#else\nb;\n#endif")
	if got != "b ;" {
		t.Errorf("got %q", got)
	}
}

func TestIfZero(t *testing.T) {
	got := expand(t, "#if 0\ndead;\n#endif\nlive;")
	if got != "live ;" {
		t.Errorf("got %q", got)
	}
}

func TestIfExpr(t *testing.T) {
	got := expand(t, "#define V 3\n#if V >= 2 && V < 5\nyes;\n#endif")
	if got != "yes ;" {
		t.Errorf("got %q", got)
	}
}

func TestNestedConditionals(t *testing.T) {
	src := `#if 1
#if 0
a;
#else
b;
#endif
#else
c;
#endif`
	if got := expand(t, src); got != "b ;" {
		t.Errorf("got %q", got)
	}
}

func TestElif(t *testing.T) {
	src := "#define V 2\n#if V == 1\na;\n#elif V == 2\nb;\n#else\nc;\n#endif"
	if got := expand(t, src); got != "b ;" {
		t.Errorf("got %q", got)
	}
}

func TestInclude(t *testing.T) {
	pp := New(map[string]string{"defs.h": "#define K 7\nint fromheader;"})
	toks := pp.Process("t.c", "#include \"defs.h\"\nint a = K;")
	for _, e := range pp.Errors() {
		t.Fatalf("%v", e)
	}
	var texts []string
	for _, tok := range toks {
		if tok.Text != "" {
			texts = append(texts, tok.Text)
		} else {
			texts = append(texts, tok.Kind.String())
		}
	}
	got := strings.Join(texts, " ")
	if got != "int fromheader ; int a = 7 ;" {
		t.Errorf("got %q", got)
	}
}

func TestUnknownSystemIncludeIgnored(t *testing.T) {
	got := expand(t, "#include <stdio.h>\nint a;")
	if got != "int a ;" {
		t.Errorf("got %q", got)
	}
}

func TestVariadicMacro(t *testing.T) {
	got := expand(t, "#define CALL(f, ...) f(__VA_ARGS__)\nCALL(g, 1, 2);")
	if got != "g ( 1 , 2 ) ;" {
		t.Errorf("got %q", got)
	}
}

func TestMacroArgumentsWithCommasInParens(t *testing.T) {
	got := expand(t, "#define ID(x) x\nID(f(a, b));")
	if got != "f ( a , b ) ;" {
		t.Errorf("got %q", got)
	}
}

func TestPredefine(t *testing.T) {
	pp := New(nil)
	pp.Define("POLYBENCH_N", "512")
	toks := pp.Process("t.c", "int n = POLYBENCH_N;")
	found := false
	for _, tok := range toks {
		if tok.Kind == token.IntLit && tok.Text == "512" {
			found = true
		}
	}
	if !found {
		t.Errorf("predefined macro not expanded: %v", toks)
	}
}

func TestPerlbenchStyleMacro(t *testing.T) {
	// The SSPOPINT pattern from the paper's Fig. 2 (perlbench regexec.c).
	src := `#define SSPOPINT (PL_savestack[--PL_savestack_ix].any_i32)
*maxopenparen_p = SSPOPINT;`
	got := expand(t, src)
	want := "* maxopenparen_p = ( PL_savestack [ -- PL_savestack_ix ] . any_i32 ) ;"
	if got != want {
		t.Errorf("got %q\nwant %q", got, want)
	}
}

func TestIncludeGuardPattern(t *testing.T) {
	hdr := `#ifndef LIB_H
#define LIB_H
int guarded;
#endif`
	pp := New(map[string]string{"lib.h": hdr})
	toks := pp.Process("t.c", "#include \"lib.h\"\n#include \"lib.h\"\nint after;")
	for _, e := range pp.Errors() {
		t.Fatalf("%v", e)
	}
	count := 0
	for _, tok := range toks {
		if tok.Text == "guarded" {
			count++
		}
	}
	if count != 1 {
		t.Errorf("include guard failed: 'guarded' declared %d times", count)
	}
}

func TestMacroUsedInsideMacroBody(t *testing.T) {
	src := `#define TWICE(x) ((x) + (x))
#define QUAD(x) TWICE(TWICE(x))
int v = QUAD(3);`
	got := expand(t, src)
	if got != "int v = ( ( ( ( 3 ) + ( 3 ) ) ) + ( ( ( 3 ) + ( 3 ) ) ) ) ;" {
		t.Errorf("got %q", got)
	}
}

func TestDefinedOperatorForms(t *testing.T) {
	src := `#define A 1
#if defined(A) && !defined(B)
yes;
#endif`
	if got := expand(t, src); got != "yes ;" {
		t.Errorf("got %q", got)
	}
}

func TestMacrosAccessor(t *testing.T) {
	pp := New(nil)
	pp.Process("t.c", "#define ONE 1\n#define TWO(x) ((x)+(x))\n")
	ms := pp.Macros()
	if m, ok := ms["ONE"]; !ok || m.IsFunc {
		t.Errorf("ONE: %+v", m)
	}
	if m, ok := ms["TWO"]; !ok || !m.IsFunc || len(m.Params) != 1 {
		t.Errorf("TWO: %+v", m)
	}
}
