package aa

import (
	"repro/internal/ir"
)

// TBAA is a simplified type-based alias analysis in the spirit of C's
// effective-type rules: accesses whose scalar classes are incompatible
// (e.g. a 4-byte int against an 8-byte double) cannot alias. Character
// (i8) accesses may alias anything, as in C; unknown classes stay
// MayAlias.
type TBAA struct{}

// NewTBAA returns the type-based analysis.
func NewTBAA() *TBAA { return &TBAA{} }

// Name implements Analysis.
func (*TBAA) Name() string { return "tbaa" }

// Alias implements Analysis.
func (*TBAA) Alias(a, b Location) Result {
	ca, cb := a.Cls, b.Cls
	if ca == ir.Void || cb == ir.Void {
		return MayAlias
	}
	if ca == ir.I8 || cb == ir.I8 {
		return MayAlias // char may alias anything
	}
	if ca == cb {
		return MayAlias
	}
	// Pointer-class accesses overlap with i64 in representation; treat
	// them as compatible.
	if (ca == ir.Ptr && cb == ir.I64) || (ca == ir.I64 && cb == ir.Ptr) {
		return MayAlias
	}
	if ca.IsFloat() != cb.IsFloat() || ca.Size() != cb.Size() {
		return NoAlias
	}
	return MayAlias
}
