package aa

import (
	"fmt"

	"repro/internal/ir"
)

// UnseqAA is the paper's contribution plugged into the AA chain: it
// answers NoAlias for pointer pairs registered through mustnotalias
// intrinsic instructions (the lowered π predicates of the AST analysis).
//
// Facts are per-value, like LLVM metadata nodes: two query pointers match
// a fact when they resolve (through Convert copies) to the registered
// values, or decompose to GEPs whose bases form a registered pair with
// offsets that keep the accesses disjoint-or-equal-indexed.
type UnseqAA struct {
	// pairs maps a registered pointer pair to the provenance id (the
	// intrinsic's Meta) of the π predicate that asserted it — the
	// attribution optimization remarks report.
	pairs map[[2]ir.Value]int
	// lastMeta is the predicate id behind the most recent NoAlias
	// answer.
	lastMeta int
}

// NewUnseqAA scans fn for mustnotalias intrinsics.
func NewUnseqAA(fn *ir.Func) *UnseqAA {
	u := &UnseqAA{}
	u.Rebuild(fn)
	return u
}

// Rebuild rescans the function (after transforms clone or delete
// intrinsics).
func (u *UnseqAA) Rebuild(fn *ir.Func) {
	u.pairs = make(map[[2]ir.Value]int)
	if fn == nil {
		return
	}
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if in.Op != ir.OpMustNotAlias || len(in.Args) != 2 {
				continue
			}
			a := resolveCopies(in.Args[0])
			c := resolveCopies(in.Args[1])
			key := normPair(a, c)
			if _, ok := u.pairs[key]; !ok {
				u.pairs[key] = in.Meta
			}
		}
	}
}

// Propagate registers derived facts from interprocedural summaries: at
// every direct call whose callee exports a π pair over two pointer
// parameters (an entry-block fact, so it holds whenever the call
// executes), the corresponding pair of actual arguments must not alias
// in this function either. The derived pair keeps the callee
// predicate's provenance id, so attribution reaches back to the
// original CANT_ALIAS annotation. A no-op without summaries.
func (u *UnseqAA) Propagate(fn *ir.Func, sums *Summaries) {
	if fn == nil || sums == nil {
		return
	}
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if in.Op != ir.OpCall {
				continue
			}
			fs := sums.ForCall(in)
			if fs == nil {
				continue
			}
			for _, p := range fs.PiPairs {
				if p.I >= len(in.Args) || p.J >= len(in.Args) {
					continue
				}
				a := resolveCopies(in.Args[p.I])
				c := resolveCopies(in.Args[p.J])
				if a == c {
					continue
				}
				key := normPair(a, c)
				if _, ok := u.pairs[key]; !ok {
					u.pairs[key] = p.Meta
				}
			}
		}
	}
}

// LastMeta returns the predicate provenance id behind the most recent
// NoAlias answer.
func (u *UnseqAA) LastMeta() int { return u.lastMeta }

// NumFacts returns the number of registered (deduplicated) pairs.
func (u *UnseqAA) NumFacts() int { return len(u.pairs) }

func normPair(a, b ir.Value) [2]ir.Value {
	if stableKey(a) > stableKey(b) {
		return [2]ir.Value{b, a}
	}
	return [2]ir.Value{a, b}
}

// stableKey gives every value a total order so pair normalization is
// symmetric regardless of query direction.
func stableKey(v ir.Value) string {
	switch x := v.(type) {
	case *ir.Instr:
		return fmt.Sprintf("i%09d", x.ID)
	case *ir.Param:
		return fmt.Sprintf("p%04d", x.Idx)
	case *ir.Global:
		return "g" + x.Name
	case *ir.FuncRef:
		return "f" + x.Name
	case *ir.Const:
		return fmt.Sprintf("c%d|%g", x.I, x.F)
	}
	return "?"
}

func resolveCopies(v ir.Value) ir.Value {
	for {
		in, ok := v.(*ir.Instr)
		if !ok || in.Op != ir.OpConvert {
			return v
		}
		v = in.Args[0]
	}
}

// Name implements Analysis.
func (*UnseqAA) Name() string { return "unseq-aa" }

// Alias implements Analysis.
func (u *UnseqAA) Alias(a, b Location) Result {
	if a.Size == WholeObject || b.Size == WholeObject {
		// A whole-object query stands for accesses at arbitrary offsets
		// from the pointer; a π fact covers only the registered values'
		// own accesses, so it must not answer.
		return MayAlias
	}
	pa := resolveCopies(a.Ptr)
	pb := resolveCopies(b.Ptr)
	if pa == pb {
		return MayAlias // same value: leave Must to basic-aa
	}
	if meta, ok := u.pairs[normPair(pa, pb)]; ok {
		u.lastMeta = meta
		return NoAlias
	}
	// NOTE: no structural extrapolation to derived pointers — a
	// must-not-alias fact about two element pointers says nothing about
	// other offsets from the same bases. Facts apply to the registered
	// values only (after copy resolution); EarlyCSE is what makes the
	// annotation's pointers and the real access pointers the same value.
	return MayAlias
}
