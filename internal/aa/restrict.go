package aa

import (
	"repro/internal/ir"
)

// RestrictAA honors C99 restrict-qualified pointer parameters: an access
// through a restrict parameter cannot alias an access whose underlying
// object is anything else (another parameter, a global, an alloca, or a
// loaded pointer). This is the comparison point the paper draws against
// Mock's study (§5): restrict is all-or-nothing per pointer and only
// usable at function boundaries, whereas CANT_ALIAS expresses pairwise
// facts at arbitrary program points.
type RestrictAA struct {
	restricted map[*ir.Param]bool
}

// NewRestrictAA collects fn's restrict parameters.
func NewRestrictAA(fn *ir.Func) *RestrictAA {
	r := &RestrictAA{restricted: map[*ir.Param]bool{}}
	if fn == nil {
		return r
	}
	for _, p := range fn.Params {
		if p.Restrict {
			r.restricted[p] = true
		}
	}
	return r
}

// Name implements Analysis.
func (*RestrictAA) Name() string { return "restrict-aa" }

// Alias implements Analysis.
func (r *RestrictAA) Alias(a, b Location) Result {
	if len(r.restricted) == 0 {
		return MayAlias
	}
	da, db := decompose(a.Ptr), decompose(b.Ptr)
	pa, aIsParam := da.base.(*ir.Param)
	pb, bIsParam := db.base.(*ir.Param)
	if aIsParam && r.restricted[pa] && da.base != db.base {
		// Everything not derived from pa is disjoint from it. (Loaded
		// pointers could in principle hold pa's value, but storing pa and
		// re-loading it to access its object violates restrict's
		// derivation rule just the same.)
		return NoAlias
	}
	if bIsParam && r.restricted[pb] && da.base != db.base {
		return NoAlias
	}
	return MayAlias
}
