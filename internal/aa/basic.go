package aa

import (
	"repro/internal/ir"
)

// BasicAA is the structural analysis in the spirit of LLVM's basic-aa:
// distinct identified objects (allocas, globals) cannot alias; pointers
// derived from the same base via constant offsets are compared exactly;
// an alloca whose address never escapes cannot alias a pointer arriving
// from elsewhere.
type BasicAA struct {
	escaped map[*ir.Instr]bool
}

// NewBasicAA returns the structural analysis with escape information for
// fn's allocas (fn may be nil for a stateless instance).
func NewBasicAA(fn *ir.Func) *BasicAA {
	b := &BasicAA{escaped: map[*ir.Instr]bool{}}
	if fn == nil {
		return b
	}
	// A pointer value "derives" an alloca if it is the alloca or a
	// GEP/Convert chain rooted at it. The alloca escapes when a deriving
	// value is stored as data, passed to a call, or returned.
	derives := func(v ir.Value) *ir.Instr {
		d := decompose(v)
		if in, ok := d.base.(*ir.Instr); ok && in.Op == ir.OpAlloca {
			return in
		}
		return nil
	}
	for _, blk := range fn.Blocks {
		for _, in := range blk.Instrs {
			switch in.Op {
			case ir.OpStore:
				if al := derives(in.Args[1]); al != nil {
					b.escaped[al] = true
				}
			case ir.OpCall:
				for _, a := range in.Args {
					if al := derives(a); al != nil {
						b.escaped[al] = true
					}
				}
			case ir.OpRet:
				for _, a := range in.Args {
					if al := derives(a); al != nil {
						b.escaped[al] = true
					}
				}
			}
		}
	}
	return b
}

// Name implements Analysis.
func (*BasicAA) Name() string { return "basic-aa" }

// decomp is a pointer decomposed into an underlying base plus offset
// information.
type decomp struct {
	base ir.Value // underlying object or unknown pointer source
	// constOff is the accumulated constant byte offset.
	constOff int
	// hasVarIdx marks a non-constant index somewhere in the chain.
	hasVarIdx bool
	// varIdx is the (single) variable index value with its scale, valid
	// when exactly one variable index appears.
	varIdx   ir.Value
	varScale int
	multiVar bool
}

// decompose walks GEP chains to an underlying object.
func decompose(v ir.Value) decomp {
	d := decomp{base: v}
	for {
		in, ok := d.base.(*ir.Instr)
		if !ok {
			return d
		}
		switch in.Op {
		case ir.OpGEP:
			d.constOff += in.Off
			if idx, isConst := in.Args[1].(*ir.Const); isConst {
				d.constOff += int(idx.I) * in.Scale
			} else {
				if d.hasVarIdx {
					d.multiVar = true
				}
				d.hasVarIdx = true
				d.varIdx = in.Args[1]
				d.varScale = in.Scale
			}
			d.base = in.Args[0]
		case ir.OpConvert:
			d.base = in.Args[0]
		default:
			return d
		}
	}
}

// identified reports whether v is an identified object (alloca or
// global), which cannot alias any other distinct identified object.
func identified(v ir.Value) bool {
	if _, ok := v.(*ir.Global); ok {
		return true
	}
	if in, ok := v.(*ir.Instr); ok && in.Op == ir.OpAlloca {
		return true
	}
	return false
}

// nonNegative reports whether the index value is provably >= 0: a
// non-negative constant, a mask with a non-negative constant, or an
// unsigned load/convert of 4 bytes or fewer (whose value fits in the
// non-negative range of i64).
func nonNegative(v ir.Value) bool {
	switch x := v.(type) {
	case *ir.Const:
		return !x.Cls.IsFloat() && x.I >= 0
	case *ir.Instr:
		switch x.Op {
		case ir.OpAnd:
			if c, ok := x.Args[1].(*ir.Const); ok && !c.Cls.IsFloat() && c.I >= 0 {
				return true
			}
			if c, ok := x.Args[0].(*ir.Const); ok && !c.Cls.IsFloat() && c.I >= 0 {
				return true
			}
		case ir.OpConvert:
			if x.Unsigned && x.Args[0].Class().Size() <= 4 {
				return true
			}
			return nonNegative(x.Args[0])
		case ir.OpLoad:
			return x.Unsigned && x.Cls.Size() <= 4
		}
	}
	return false
}

// Alias implements Analysis.
func (ba *BasicAA) Alias(a, b Location) Result {
	da, db := decompose(a.Ptr), decompose(b.Ptr)

	if da.base != db.base {
		// Distinct identified objects never alias.
		if identified(da.base) && identified(db.base) {
			return NoAlias
		}
		// A non-escaping alloca cannot alias a pointer from elsewhere.
		if al, ok := da.base.(*ir.Instr); ok && al.Op == ir.OpAlloca && !ba.escaped[al] {
			return NoAlias
		}
		if al, ok := db.base.(*ir.Instr); ok && al.Op == ir.OpAlloca && !ba.escaped[al] {
			return NoAlias
		}
		return MayAlias
	}

	// A whole-object extent (interprocedural wide access) reaches any
	// offset within the shared base: only the distinct-object reasoning
	// above applies, never the offset arithmetic below.
	if a.Size == WholeObject || b.Size == WholeObject {
		return MayAlias
	}

	// Same base: a const-offset access below a field whose variable index
	// is provably non-negative cannot overlap it (LLVM basic-aa's
	// non-negative GEP reasoning; resolves coder->pos vs
	// coder->history[x & 0xFF]).
	if !da.hasVarIdx && db.hasVarIdx && !db.multiVar &&
		db.varScale > 0 && nonNegative(db.varIdx) &&
		da.constOff+a.Size <= db.constOff {
		return NoAlias
	}
	if !db.hasVarIdx && da.hasVarIdx && !da.multiVar &&
		da.varScale > 0 && nonNegative(da.varIdx) &&
		db.constOff+b.Size <= da.constOff {
		return NoAlias
	}

	// Same base: compare offsets.
	if !da.hasVarIdx && !db.hasVarIdx {
		aStart, aEnd := da.constOff, da.constOff+a.Size
		bStart, bEnd := db.constOff, db.constOff+b.Size
		if aEnd <= bStart || bEnd <= aStart {
			return NoAlias
		}
		if aStart == bStart && a.Size == b.Size {
			return MustAlias
		}
		return PartialAlias
	}
	// Same variable index with equal scales and different constant
	// offsets beyond the access size: no alias (classic a[i].f1 vs
	// a[i].f2 case).
	if da.hasVarIdx && db.hasVarIdx && !da.multiVar && !db.multiVar &&
		da.varIdx == db.varIdx && da.varScale == db.varScale {
		aStart, aEnd := da.constOff, da.constOff+a.Size
		bStart, bEnd := db.constOff, db.constOff+b.Size
		if aEnd <= bStart || bEnd <= aStart {
			return NoAlias
		}
		if aStart == bStart && a.Size == b.Size {
			return MustAlias
		}
		return PartialAlias
	}
	return MayAlias
}
