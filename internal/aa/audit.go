package aa

import (
	"strconv"

	"repro/internal/ir"
	"repro/internal/telemetry"
)

// AttachAudit arms the manager's alias-query audit log: every chain
// query is recorded into tel with the asking pass, function, both
// locations, the full per-provider verdict chain, and — for unseq-aa
// answers — the π predicate's provenance resolved through mod. A no-op
// when the session's audit stream is off, so the fast query path keeps
// its zero-cost shape.
func (m *Manager) AttachAudit(tel *telemetry.Session, mod *ir.Module, fname string) {
	if !tel.AuditEnabled() {
		return
	}
	m.tel = tel
	m.mod = mod
	m.fname = fname
}

// SetPass records which optimization pass is currently issuing queries
// (audit attribution); it returns the previous pass name so callers can
// restore it on exit.
func (m *Manager) SetPass(pass string) string {
	prev := m.pass
	m.pass = pass
	return prev
}

// locString renders a memory location for the audit log.
func locString(l Location) string {
	sz := strconv.Itoa(l.Size) + "B"
	if l.Size == WholeObject {
		sz = "whole-object"
	}
	s := ir.ValueName(l.Ptr) + " [" + sz + "]"
	if l.Cls != ir.Void {
		s += " " + l.Cls.String()
	}
	return s
}

// aliasAudited is Alias with the full verdict chain recorded. Unlike
// the fast path it queries every provider (the chain past the deciding
// answer is log-only); because unseq-aa sits last in the chain, the
// stats and attribution updates below are exactly the fast path's.
func (m *Manager) aliasAudited(a, b Location) Result {
	m.Stats.Queries++
	m.last = Attribution{}
	q := telemetry.AliasQuery{
		Pass:       m.pass,
		Function:   m.fname,
		LocA:       locString(a),
		LocB:       locString(b),
		ViaSummary: m.inSummary,
		Chain:      make([]telemetry.ProviderVerdict, 0, len(m.analyses)),
	}
	best := MayAlias
	othersBest := MayAlias
	decided := false
	for _, an := range m.analyses {
		r := an.Alias(a, b)
		q.Chain = append(q.Chain, telemetry.ProviderVerdict{Provider: an.Name(), Verdict: r.String()})
		if decided {
			continue
		}
		if r == NoAlias {
			if an == Analysis(m.unseq) {
				q.PredicateMeta = m.unseq.LastMeta()
				if othersBest == MayAlias {
					m.Stats.UnseqNoAlias++
					m.last = Attribution{UnseqDecided: true, PredicateMeta: q.PredicateMeta}
					if !m.window.UnseqDecided {
						m.window = m.last
					}
					q.UnseqDecided = true
				}
			}
			m.Stats.NoAlias++
			if m.inSummary {
				m.Stats.SummaryNoAlias++
			}
			q.Decider = an.Name()
			best = NoAlias
			decided = true
			continue
		}
		if r > best {
			best = r
		}
		if m.unseq == nil || an != Analysis(m.unseq) {
			if r > othersBest {
				othersBest = r
			}
		}
	}
	if !decided {
		switch best {
		case MustAlias:
			m.Stats.MustAlias++
		case PartialAlias:
			m.Stats.PartialAlias++
		default:
			m.Stats.MayAlias++
		}
	}
	q.Result = best.String()
	m.resolveProvenance(&q)
	m.tel.RecordAliasQuery(q)
	return best
}

// unseqDecidesAudited records the vectorizer-style direct unseq-aa
// probe as a single-provider chain entry.
func (m *Manager) unseqDecidesAudited(a, b Location, r Result) {
	q := telemetry.AliasQuery{
		Pass:     m.pass,
		Function: m.fname,
		LocA:     locString(a),
		LocB:     locString(b),
		Chain:    []telemetry.ProviderVerdict{{Provider: m.unseq.Name(), Verdict: r.String()}},
		Result:   r.String(),
	}
	if r == NoAlias {
		q.Decider = m.unseq.Name()
		q.UnseqDecided = true
		q.PredicateMeta = m.unseq.LastMeta()
	}
	m.resolveProvenance(&q)
	m.tel.RecordAliasQuery(q)
}

// resolveProvenance fills the π pair's source spellings and ranges from
// the module provenance table.
func (m *Manager) resolveProvenance(q *telemetry.AliasQuery) {
	if q.PredicateMeta <= 0 {
		return
	}
	p := m.mod.FindProvenance(q.PredicateMeta)
	if p == nil {
		return
	}
	q.PiE1, q.PiE2 = p.E1, p.E2
	q.PiE1Range, q.PiE2Range = p.Span1.String(), p.Span2.String()
}
