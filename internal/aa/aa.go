// Package aa is the alias-analysis subsystem: a chain of analyses queried
// in series, stopping at the first that returns NoAlias — mirroring
// LLVM's AAResults aggregation the paper plugs unseq-aa into. It also
// keeps the aa-eval style counters reported in Table 5 (additional
// must-not-alias responses, etc.).
package aa

import (
	"repro/internal/ir"
	"repro/internal/telemetry"
)

// Result is an alias query response.
type Result int

// Alias query responses, from weakest to strongest.
const (
	MayAlias Result = iota
	PartialAlias
	MustAlias
	NoAlias
)

func (r Result) String() string {
	return [...]string{"MayAlias", "PartialAlias", "MustAlias", "NoAlias"}[r]
}

// Location is a memory location: a pointer value, an access size, and
// (when known) the scalar class of the access — the effective type TBAA
// reasons about.
type Location struct {
	Ptr  ir.Value
	Size int
	Cls  ir.Class // ir.Void when unknown
}

// Analysis is one alias analysis algorithm.
type Analysis interface {
	Name() string
	Alias(a, b Location) Result
}

// Stats counts query outcomes, overall and attributed to unseq-aa.
type Stats struct {
	Queries int
	// Outcomes of the full chain.
	NoAlias, MayAlias, MustAlias, PartialAlias int
	// UnseqNoAlias counts queries where unseq-aa answered NoAlias while
	// every other analysis in the chain said MayAlias — the paper's
	// "additional must-not-alias responses".
	UnseqNoAlias int
	// SummaryNoAlias counts NoAlias answers to queries issued inside a
	// CallModRef resolution — the interprocedural-summary sub-queries
	// that let a transform cross a call site. A subset of NoAlias.
	SummaryNoAlias int
}

// Add accumulates other into s (the scheduler's ordered fan-in and the
// driver both merge per-function stats through it).
func (s *Stats) Add(other Stats) {
	s.Queries += other.Queries
	s.NoAlias += other.NoAlias
	s.MayAlias += other.MayAlias
	s.MustAlias += other.MustAlias
	s.PartialAlias += other.PartialAlias
	s.UnseqNoAlias += other.UnseqNoAlias
	s.SummaryNoAlias += other.SummaryNoAlias
}

// Attribution describes how a query (or a window of queries) was
// decided: whether unseq-aa supplied the deciding NoAlias answer, and
// if so the provenance id (mustnotalias intrinsic Meta) of the π
// predicate that registered the fact. It is the payload optimization
// remarks carry so a transform can be traced back to the predicate
// that enabled it.
type Attribution struct {
	// UnseqDecided is set when unseq-aa answered NoAlias while every
	// other analysis in the chain said MayAlias.
	UnseqDecided bool
	// PredicateMeta is the enabling predicate's provenance id.
	PredicateMeta int
}

// Manager chains analyses.
type Manager struct {
	analyses []Analysis
	unseq    *UnseqAA // may be nil
	Stats    Stats

	// fn is the function whose accesses the chain reasons about;
	// summaries is the module's interprocedural table (nil = every call
	// is a clobber-everything barrier). inSummary flags queries issued
	// from inside CallModRef for the SummaryNoAlias stat and the audit
	// log's viaSummary attribute.
	fn        *ir.Func
	summaries *Summaries
	inSummary bool

	// last describes the most recent query; window accumulates since
	// ResetWindow — passes bracket a transform candidate's legality
	// queries with ResetWindow/Window to attribute the transform.
	last   Attribution
	window Attribution

	// Audit state (nil/zero unless AttachAudit armed it): the session
	// receiving query records, the module for provenance resolution, the
	// function being optimized, and the currently-asking pass.
	tel   *telemetry.Session
	mod   *ir.Module
	fname string
	pass  string
}

// NewManager builds the default chain: basic-aa, tbaa, and (optionally)
// unseq-aa.
func NewManager(fn *ir.Func, unseq bool) *Manager {
	m := &Manager{fn: fn}
	m.analyses = append(m.analyses, NewBasicAA(fn))
	m.analyses = append(m.analyses, NewRestrictAA(fn))
	m.analyses = append(m.analyses, NewTBAA())
	if unseq {
		m.unseq = NewUnseqAA(fn)
		m.analyses = append(m.analyses, m.unseq)
	}
	return m
}

// Refresh rebuilds analysis caches after a transform invalidates them
// (e.g. unrolling cloned intrinsics, new allocas).
func (m *Manager) Refresh(fn *ir.Func) {
	m.fn = fn
	m.analyses[0] = NewBasicAA(fn)
	m.analyses[1] = NewRestrictAA(fn)
	if m.unseq != nil {
		m.unseq.Rebuild(fn)
		m.unseq.Propagate(fn, m.summaries)
	}
}

// SetSummaries attaches the module's interprocedural summary table:
// CallModRef starts answering from it, and callee-exported π facts are
// registered on the call arguments in unseq-aa (π-set propagation
// through arguments).
func (m *Manager) SetSummaries(s *Summaries) {
	m.summaries = s
	if m.unseq != nil {
		m.unseq.Propagate(m.fn, s)
	}
}

// HasSummaries reports whether an interprocedural table is attached.
func (m *Manager) HasSummaries() bool { return m.summaries != nil }

// Summaries returns the attached table (nil when interprocedural
// analysis is off).
func (m *Manager) Summaries() *Summaries { return m.summaries }

// CallReadNone reports whether the callee's summary proves the call
// touches no caller-visible memory at all — no queries needed.
func (m *Manager) CallReadNone(call *ir.Instr) bool {
	fs := m.summaries.ForCall(call)
	return fs != nil && fs.Empty()
}

// CallModRef resolves a call instruction's effect on loc through the
// callee's summary: the Unknown bucket applies unconditionally, global
// effects apply unless the chain proves loc NoAlias with the global,
// and per-parameter effects apply unless the chain proves loc NoAlias
// with the actual argument (value-exact for direct accesses — where a
// caller π pair over the argument answers — and WholeObject for wide
// ones). Without a summary (indirect call, unknown external, no table
// attached) the answer is the legacy barrier, ModRefEffect.
//
// Sub-queries run through the ordinary chain in deterministic order,
// so stats, audit records, and the attribution window accumulate
// exactly as direct queries do; afterwards Last() carries the first
// unseq-decided sub-query's attribution (the π pair that crossed the
// call), or a zero Attribution if none did.
func (m *Manager) CallModRef(call *ir.Instr, loc Location) Effect {
	if call == nil || call.Op != ir.OpCall || m.summaries == nil {
		return ModRefEffect
	}
	fs := m.summaries.ForCall(call)
	if fs == nil {
		m.last = Attribution{}
		return ModRefEffect
	}
	if loc.Ptr == nil {
		m.last = Attribution{}
		if fs.Empty() {
			return 0
		}
		return ModRefEffect
	}
	m.inSummary = true
	var att Attribution
	eff := fs.Unknown
	for _, ge := range fs.Globals {
		if eff == ModRefEffect {
			break
		}
		if ge.Eff&^eff == 0 {
			continue
		}
		gsize := ge.Global.Size
		if gsize <= 0 {
			gsize = 8
		}
		if m.Alias(loc, Location{Ptr: ge.Global, Size: gsize}) != NoAlias {
			eff |= ge.Eff
		} else if m.last.UnseqDecided && !att.UnseqDecided {
			att = m.last
		}
	}
	for i, pe := range fs.Params {
		if eff == ModRefEffect {
			break
		}
		if pe.Eff == 0 || pe.Eff&^eff == 0 {
			continue
		}
		if i >= len(call.Args) {
			eff |= pe.Eff
			continue
		}
		q := Location{Ptr: call.Args[i], Size: WholeObject}
		if !pe.Wide {
			q.Size, q.Cls = pe.DirectSize, pe.DirectCls
		}
		if m.Alias(loc, q) != NoAlias {
			eff |= pe.Eff
		} else if m.last.UnseqDecided && !att.UnseqDecided {
			att = m.last
		}
	}
	m.inSummary = false
	m.last = att
	return eff
}

// Unseq exposes the unseq-aa instance (nil when disabled).
func (m *Manager) Unseq() *UnseqAA { return m.unseq }

// ResetWindow clears the attribution accumulator. Passes call it
// before a transform candidate's legality queries.
func (m *Manager) ResetWindow() { m.window = Attribution{} }

// Window returns the attribution accumulated since ResetWindow: set if
// any query in the window was decided by unseq-aa (the first deciding
// predicate's meta is kept).
func (m *Manager) Window() Attribution { return m.window }

// Last returns the attribution of the most recent Alias query.
func (m *Manager) Last() Attribution { return m.last }

// UnseqDecides reports whether unseq-aa alone answers NoAlias for
// (a, b), merging the attribution into the current window. Passes use
// it to test whether an already-proven fact came from the paper's
// analysis (the vectorizer's cost-model question).
func (m *Manager) UnseqDecides(a, b Location) bool {
	if m.unseq == nil {
		return false
	}
	r := m.unseq.Alias(a, b)
	if m.tel != nil {
		m.unseqDecidesAudited(a, b, r)
	}
	if r != NoAlias {
		return false
	}
	if !m.window.UnseqDecided {
		m.window = Attribution{UnseqDecided: true, PredicateMeta: m.unseq.LastMeta()}
	}
	return true
}

// Alias runs the chain on (a, b).
func (m *Manager) Alias(a, b Location) Result {
	if m.tel != nil {
		return m.aliasAudited(a, b)
	}
	m.Stats.Queries++
	m.last = Attribution{}
	best := MayAlias
	othersBest := MayAlias
	for _, an := range m.analyses {
		r := an.Alias(a, b)
		if r == NoAlias {
			if an == Analysis(m.unseq) && othersBest == MayAlias {
				m.Stats.UnseqNoAlias++
				m.last = Attribution{UnseqDecided: true, PredicateMeta: m.unseq.LastMeta()}
				if !m.window.UnseqDecided {
					m.window = m.last
				}
			}
			m.Stats.NoAlias++
			if m.inSummary {
				m.Stats.SummaryNoAlias++
			}
			return NoAlias
		}
		if r > best {
			best = r
		}
		if m.unseq == nil || an != Analysis(m.unseq) {
			if r > othersBest {
				othersBest = r
			}
		}
	}
	switch best {
	case MustAlias:
		m.Stats.MustAlias++
	case PartialAlias:
		m.Stats.PartialAlias++
	default:
		m.Stats.MayAlias++
	}
	return best
}

// AliasPtrs is a convenience for same-size scalar queries.
func (m *Manager) AliasPtrs(a, b ir.Value, size int) Result {
	return m.Alias(Location{Ptr: a, Size: size}, Location{Ptr: b, Size: size})
}
