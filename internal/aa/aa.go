// Package aa is the alias-analysis subsystem: a chain of analyses queried
// in series, stopping at the first that returns NoAlias — mirroring
// LLVM's AAResults aggregation the paper plugs unseq-aa into. It also
// keeps the aa-eval style counters reported in Table 5 (additional
// must-not-alias responses, etc.).
package aa

import (
	"repro/internal/ir"
)

// Result is an alias query response.
type Result int

// Alias query responses, from weakest to strongest.
const (
	MayAlias Result = iota
	PartialAlias
	MustAlias
	NoAlias
)

func (r Result) String() string {
	return [...]string{"MayAlias", "PartialAlias", "MustAlias", "NoAlias"}[r]
}

// Location is a memory location: a pointer value, an access size, and
// (when known) the scalar class of the access — the effective type TBAA
// reasons about.
type Location struct {
	Ptr  ir.Value
	Size int
	Cls  ir.Class // ir.Void when unknown
}

// Analysis is one alias analysis algorithm.
type Analysis interface {
	Name() string
	Alias(a, b Location) Result
}

// Stats counts query outcomes, overall and attributed to unseq-aa.
type Stats struct {
	Queries int
	// Outcomes of the full chain.
	NoAlias, MayAlias, MustAlias, PartialAlias int
	// UnseqNoAlias counts queries where unseq-aa answered NoAlias while
	// every other analysis in the chain said MayAlias — the paper's
	// "additional must-not-alias responses".
	UnseqNoAlias int
}

// Manager chains analyses.
type Manager struct {
	analyses []Analysis
	unseq    *UnseqAA // may be nil
	Stats    Stats
}

// NewManager builds the default chain: basic-aa, tbaa, and (optionally)
// unseq-aa.
func NewManager(fn *ir.Func, unseq bool) *Manager {
	m := &Manager{}
	m.analyses = append(m.analyses, NewBasicAA(fn))
	m.analyses = append(m.analyses, NewRestrictAA(fn))
	m.analyses = append(m.analyses, NewTBAA())
	if unseq {
		m.unseq = NewUnseqAA(fn)
		m.analyses = append(m.analyses, m.unseq)
	}
	return m
}

// Refresh rebuilds analysis caches after a transform invalidates them
// (e.g. unrolling cloned intrinsics, new allocas).
func (m *Manager) Refresh(fn *ir.Func) {
	m.analyses[0] = NewBasicAA(fn)
	m.analyses[1] = NewRestrictAA(fn)
	if m.unseq != nil {
		m.unseq.Rebuild(fn)
	}
}

// Unseq exposes the unseq-aa instance (nil when disabled).
func (m *Manager) Unseq() *UnseqAA { return m.unseq }

// Alias runs the chain on (a, b).
func (m *Manager) Alias(a, b Location) Result {
	m.Stats.Queries++
	best := MayAlias
	othersBest := MayAlias
	for _, an := range m.analyses {
		r := an.Alias(a, b)
		if r == NoAlias {
			if an == Analysis(m.unseq) && othersBest == MayAlias {
				m.Stats.UnseqNoAlias++
			}
			m.Stats.NoAlias++
			return NoAlias
		}
		if r > best {
			best = r
		}
		if m.unseq == nil || an != Analysis(m.unseq) {
			if r > othersBest {
				othersBest = r
			}
		}
	}
	switch best {
	case MustAlias:
		m.Stats.MustAlias++
	case PartialAlias:
		m.Stats.PartialAlias++
	default:
		m.Stats.MayAlias++
	}
	return best
}

// AliasPtrs is a convenience for same-size scalar queries.
func (m *Manager) AliasPtrs(a, b ir.Value, size int) Result {
	return m.Alias(Location{Ptr: a, Size: size}, Location{Ptr: b, Size: size})
}
