package aa

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ir"
)

// This file is the interprocedural half of the alias subsystem:
// bottom-up call-graph summaries that let the chain answer mod/ref
// queries at call sites instead of treating every call as a
// clobber-everything barrier. A summary describes, per function, which
// memory a call to it may read or write — partitioned into effects
// through each pointer parameter, effects on named globals, and an
// Unknown bucket for everything the analysis cannot attribute
// (escaped pointers, external or indirect callees). Effects through a
// parameter are resolved at each call site through the actual argument
// with ordinary Alias queries in the caller's chain, which is exactly
// where a caller's unseq-aa π pair (a, b) gets to answer NoAlias for
// an access made inside the callee.

// Effect is a mod/ref bitmask over one memory partition.
type Effect uint8

const (
	// RefEffect marks a possible read.
	RefEffect Effect = 1 << iota
	// ModEffect marks a possible write.
	ModEffect
)

// ModRefEffect is the top of the effect lattice: may read and write.
const ModRefEffect = RefEffect | ModEffect

func (e Effect) String() string {
	switch e {
	case 0:
		return "none"
	case RefEffect:
		return "ref"
	case ModEffect:
		return "mod"
	}
	return "mod+ref"
}

// WholeObject is a Location.Size sentinel meaning "any offset, in
// either direction, within the pointer's underlying object". Providers
// that reason about offsets or access extents must stay conservative
// when they see it: basic-aa keeps only its distinct-object facts, and
// unseq-aa refuses the query entirely (a π fact about two exact
// pointer values says nothing about other offsets from them).
const WholeObject = -1

// ParamEffect is a function's accumulated effect on memory reachable
// through one pointer parameter.
type ParamEffect struct {
	// Eff is the mod/ref accumulation; zero means the parameter's
	// pointee is never touched.
	Eff Effect
	// Wide marks accesses at non-zero or variable offsets from the
	// parameter (p[i], p+4, memset): call-site resolution must use a
	// WholeObject query. When false, every access is through the exact
	// parameter value and DirectSize/DirectCls describe it, so the
	// call-site query is value-exact — the shape unseq-aa π facts can
	// answer.
	Wide bool
	// DirectSize is the widest exact-pointer access in bytes.
	DirectSize int
	// DirectCls is the access class when every exact access agrees
	// (ir.Void otherwise).
	DirectCls ir.Class
}

// GlobalEffect is a function's accumulated effect on one global.
type GlobalEffect struct {
	Global *ir.Global
	Eff    Effect
}

// PiParamPair is a must-not-alias fact between two pointer parameters,
// exported from a function's entry block (which executes whenever the
// function is called) so callers can register the fact on their actual
// arguments. Meta is the originating π predicate's provenance id.
type PiParamPair struct {
	I, J int
	Meta int
}

// FuncSummary is one function's interprocedural summary.
type FuncSummary struct {
	Fn     *ir.Func
	Params []ParamEffect
	// Globals lists touched globals in first-touch order (deterministic:
	// the builder walks blocks in order).
	Globals []GlobalEffect
	// Unknown is the effect on memory the analysis cannot attribute to
	// a parameter or global: accesses through escaped or loaded
	// pointers, and the whole effect of external or indirect callees.
	// ModRefEffect here reproduces the legacy call barrier.
	Unknown Effect
	// PiPairs are the exported parameter-level π facts.
	PiPairs []PiParamPair

	globalIdx map[*ir.Global]int
}

// Top reports whether the summary is the clobber-everything barrier.
func (fs *FuncSummary) Top() bool { return fs.Unknown == ModRefEffect }

// Empty reports whether a call to the function provably touches no
// memory visible to the caller (the readnone shape).
func (fs *FuncSummary) Empty() bool {
	if fs.Unknown != 0 || len(fs.Globals) > 0 {
		return false
	}
	for _, pe := range fs.Params {
		if pe.Eff != 0 {
			return false
		}
	}
	return true
}

func (fs *FuncSummary) addGlobal(g *ir.Global, eff Effect) {
	if eff == 0 {
		return
	}
	if fs.globalIdx == nil {
		fs.globalIdx = map[*ir.Global]int{}
	}
	if i, ok := fs.globalIdx[g]; ok {
		fs.Globals[i].Eff |= eff
		return
	}
	fs.globalIdx[g] = len(fs.Globals)
	fs.Globals = append(fs.Globals, GlobalEffect{Global: g, Eff: eff})
}

func (fs *FuncSummary) addPi(i, j, meta int) {
	if i == j {
		return
	}
	if j < i {
		i, j = j, i
	}
	for _, p := range fs.PiPairs {
		if p.I == i && p.J == j {
			return
		}
	}
	fs.PiPairs = append(fs.PiPairs, PiParamPair{I: i, J: j, Meta: meta})
}

// equal compares two summaries field-wise (the fixpoint convergence
// test).
func (fs *FuncSummary) equal(o *FuncSummary) bool {
	if fs.Unknown != o.Unknown ||
		len(fs.Params) != len(o.Params) ||
		len(fs.Globals) != len(o.Globals) ||
		len(fs.PiPairs) != len(o.PiPairs) {
		return false
	}
	for i := range fs.Params {
		if fs.Params[i] != o.Params[i] {
			return false
		}
	}
	for i := range fs.Globals {
		if fs.Globals[i] != o.Globals[i] {
			return false
		}
	}
	for i := range fs.PiPairs {
		if fs.PiPairs[i] != o.PiPairs[i] {
			return false
		}
	}
	return true
}

// String renders the summary for -print-summaries and for the
// per-function content digests the compile service keys on.
func (fs *FuncSummary) String() string {
	var b strings.Builder
	b.WriteString("params[")
	for i, pe := range fs.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		name := fmt.Sprintf("p%d", i)
		if fs.Fn != nil && i < len(fs.Fn.Params) {
			name = fs.Fn.Params[i].Name
		}
		b.WriteString(name + ": " + pe.Eff.String())
		if pe.Eff != 0 {
			if pe.Wide {
				b.WriteString("(wide)")
			} else {
				fmt.Fprintf(&b, "(%dB %s)", pe.DirectSize, pe.DirectCls)
			}
		}
	}
	b.WriteString("] globals[")
	for i, ge := range fs.Globals {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString("@" + ge.Global.Name + ": " + ge.Eff.String())
	}
	b.WriteString("] unknown: " + fs.Unknown.String())
	if len(fs.PiPairs) > 0 {
		b.WriteString(" pi[")
		for i, p := range fs.PiPairs {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "(p%d,p%d)#%d", p.I, p.J, p.Meta)
		}
		b.WriteString("]")
	}
	return b.String()
}

// emptySummary is the shared readnone summary for pure external
// builtins.
var emptySummary = &FuncSummary{}

// Summaries is the module's summary table, computed once from the
// pre-pipeline IR (see BuildSummaries) and treated as read-only by the
// per-function pipelines — which keeps -j1 and -jN byte-identical and
// stays sound because optimization never makes a function touch memory
// it could not already touch.
type Summaries struct {
	byName     map[string]*FuncSummary
	pureExtern func(string) bool
}

// Of returns the named module function's summary (nil if absent).
func (s *Summaries) Of(name string) *FuncSummary {
	if s == nil {
		return nil
	}
	return s.byName[name]
}

// ForCall resolves the summary governing a call instruction: the
// callee's for a direct in-module call, the shared empty summary for a
// pure external builtin, and nil — degrade to ⊤ — for indirect calls
// and unknown externals.
func (s *Summaries) ForCall(in *ir.Instr) *FuncSummary {
	if s == nil || in == nil || in.Op != ir.OpCall || in.Callee == "" {
		return nil
	}
	if fs, ok := s.byName[in.Callee]; ok {
		return fs
	}
	if s.pureExtern != nil && s.pureExtern(in.Callee) {
		return emptySummary
	}
	return nil
}

// Len returns the number of summarized functions.
func (s *Summaries) Len() int {
	if s == nil {
		return 0
	}
	return len(s.byName)
}

// String renders every summary, sorted by function name (the dump is
// consumed by -print-summaries and tests; module order is not stable
// across seeds the way names are).
func (s *Summaries) String() string {
	names := make([]string, 0, len(s.byName))
	for n := range s.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("summaries:\n")
	for _, n := range names {
		b.WriteString("  " + n + ": " + s.byName[n].String() + "\n")
	}
	return b.String()
}

// BuildSummaries computes every function's summary in bottom-up SCC
// order. bottomUp groups functions so that each group's callees are in
// the group itself or an earlier one (passes.CallGraph.BottomUp);
// recursive components iterate to a fixpoint, which terminates because
// every summary component grows monotonically in a finite lattice.
// pureExtern classifies external callees with no body that are known
// readnone (the pure math builtins); all other externals are ⊤.
func BuildSummaries(mod *ir.Module, bottomUp [][]*ir.Func, pureExtern func(string) bool) *Summaries {
	s := &Summaries{byName: make(map[string]*FuncSummary, len(mod.Funcs)), pureExtern: pureExtern}
	// Pre-register every function at the lattice bottom so same-SCC
	// callees resolve during fixpoint iteration.
	for _, f := range mod.Funcs {
		s.byName[f.Name] = &FuncSummary{Fn: f, Params: make([]ParamEffect, len(f.Params))}
	}
	for _, scc := range bottomUp {
		for {
			changed := false
			for _, f := range scc {
				ns := summarize(f, s)
				if !ns.equal(s.byName[f.Name]) {
					s.byName[f.Name] = ns
					changed = true
				}
			}
			if !changed {
				break
			}
		}
	}
	return s
}

// ---------- per-function summary construction ----------

type originKind uint8

const (
	originLocal originKind = iota
	originParam
	originGlobal
	originUnknown
	// originCycle marks a slot resolution that reached itself (pointer
	// induction: p = p + 1). The cyclic contribution is an offset chain
	// over the slot's other stored values, so it joins as "same origin,
	// not plain".
	originCycle
)

// origin is a pointer value resolved to the memory partition it
// addresses.
type origin struct {
	kind   originKind
	param  int
	global *ir.Global
	// plain marks a pointer equal to the partition's base value itself
	// (no GEP offset anywhere in the chain) — the shape whose call-site
	// resolution can be value-exact.
	plain bool
}

func joinOrigin(a, b origin) origin {
	if a.kind == originCycle {
		b.plain = false
		return b
	}
	if b.kind == originCycle {
		a.plain = false
		return a
	}
	if a.kind != b.kind {
		return origin{kind: originUnknown}
	}
	switch a.kind {
	case originParam:
		if a.param != b.param {
			return origin{kind: originUnknown}
		}
	case originGlobal:
		if a.global != b.global {
			return origin{kind: originUnknown}
		}
	}
	a.plain = a.plain && b.plain
	return a
}

// slotInfo describes one alloca used purely as a load/store slot.
type slotInfo struct {
	stores []ir.Value
	clean  bool
}

type summaryBuilder struct {
	fn   *ir.Func
	sums *Summaries
	out  *FuncSummary

	slots    map[*ir.Instr]*slotInfo
	memo     map[ir.Value]origin
	visiting map[*ir.Instr]bool
}

// summarize computes fn's summary against the current (possibly
// partial, for same-SCC callees) table.
func summarize(fn *ir.Func, sums *Summaries) *FuncSummary {
	out := &FuncSummary{Fn: fn, Params: make([]ParamEffect, len(fn.Params))}
	if fn.ReadNone {
		return out
	}
	sb := &summaryBuilder{
		fn:       fn,
		sums:     sums,
		out:      out,
		memo:     map[ir.Value]origin{},
		visiting: map[*ir.Instr]bool{},
	}
	sb.scanSlots()
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpLoad:
				sb.access(in.Args[0], RefEffect, in.Cls.Size(), in.Cls, false)
			case ir.OpVecLoad:
				sb.access(in.Args[0], RefEffect, in.Cls.Size()*in.Width, in.Cls, false)
			case ir.OpStore:
				cls := in.Args[1].Class()
				sb.access(in.Args[0], ModEffect, cls.Size(), cls, false)
			case ir.OpVecStore:
				sb.access(in.Args[0], ModEffect, in.Cls.Size()*in.Width, in.Cls, false)
			case ir.OpMemset:
				sb.access(in.Args[0], ModEffect, 0, ir.Void, true)
			case ir.OpMemcpy:
				sb.access(in.Args[0], ModEffect, 0, ir.Void, true)
				sb.access(in.Args[1], RefEffect, 0, ir.Void, true)
			case ir.OpCall:
				sb.call(in)
			}
		}
	}
	sb.exportPi()
	return out
}

// scanSlots classifies fn's allocas: a slot is clean when its address
// value is only ever used directly as a load/store address (so the set
// of values a load can yield is exactly the set of stored values).
func (sb *summaryBuilder) scanSlots() {
	sb.slots = map[*ir.Instr]*slotInfo{}
	for _, b := range sb.fn.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpAlloca {
				sb.slots[in] = &slotInfo{clean: true}
			}
		}
	}
	for _, b := range sb.fn.Blocks {
		for _, in := range b.Instrs {
			for ai, a := range in.Args {
				al, ok := a.(*ir.Instr)
				if !ok || al.Op != ir.OpAlloca {
					continue
				}
				si := sb.slots[al]
				if si == nil {
					continue
				}
				switch {
				case in.Op == ir.OpLoad && ai == 0:
					// address use
				case in.Op == ir.OpStore && ai == 0:
					si.stores = append(si.stores, in.Args[1])
				case in.Op == ir.OpMustNotAlias:
					// annotation use: neither a store nor an escape
				default:
					si.clean = false
				}
			}
		}
	}
}

// originOf resolves a pointer value to the partition it addresses.
func (sb *summaryBuilder) originOf(v ir.Value) origin {
	if o, ok := sb.memo[v]; ok {
		return o
	}
	o := sb.resolve(v)
	if o.kind != originCycle {
		sb.memo[v] = o
	}
	return o
}

func (sb *summaryBuilder) resolve(v ir.Value) origin {
	d := decompose(v)
	plain := d.constOff == 0 && !d.hasVarIdx
	switch base := d.base.(type) {
	case *ir.Param:
		if base.Idx < len(sb.fn.Params) && sb.fn.Params[base.Idx] == base {
			return origin{kind: originParam, param: base.Idx, plain: plain}
		}
		// A parameter of some other function (inliner leftovers would be
		// a bug, but stay conservative).
		return origin{kind: originUnknown}
	case *ir.Global:
		return origin{kind: originGlobal, global: base, plain: plain}
	case *ir.Instr:
		switch base.Op {
		case ir.OpAlloca:
			return origin{kind: originLocal, plain: plain}
		case ir.OpLoad:
			al, ok := base.Args[0].(*ir.Instr)
			if !ok || al.Op != ir.OpAlloca {
				return origin{kind: originUnknown}
			}
			si := sb.slots[al]
			if si == nil || !si.clean || len(si.stores) == 0 {
				return origin{kind: originUnknown}
			}
			if sb.visiting[al] {
				return origin{kind: originCycle}
			}
			sb.visiting[al] = true
			// Seed from the first stored value, then join the rest: the
			// originCycle kind is reserved for genuinely cyclic stores
			// (pointer induction), which poison plain-ness on join.
			acc := origin{kind: originCycle}
			for si2, sv := range si.stores {
				if si2 == 0 {
					acc = sb.originOf(sv)
				} else {
					acc = joinOrigin(acc, sb.originOf(sv))
				}
				if acc.kind == originUnknown {
					break
				}
			}
			delete(sb.visiting, al)
			if acc.kind == originCycle {
				// Every store was cyclic: nothing ever initialized the
				// slot from outside; give up.
				acc = origin{kind: originUnknown}
			}
			if !plain {
				acc.plain = false
			}
			return acc
		}
	}
	return origin{kind: originUnknown}
}

// access records one memory access through ptr.
func (sb *summaryBuilder) access(ptr ir.Value, eff Effect, size int, cls ir.Class, wide bool) {
	o := sb.originOf(ptr)
	sb.record(o, eff, size, cls, wide || !o.plain)
}

func (sb *summaryBuilder) record(o origin, eff Effect, size int, cls ir.Class, wide bool) {
	if eff == 0 {
		return
	}
	switch o.kind {
	case originLocal:
		// Function-local memory is invisible to callers. (Returning a
		// pointer to it is already undefined behaviour, so a caller
		// access through it is outside the semantics we must preserve.)
	case originParam:
		pe := &sb.out.Params[o.param]
		pe.Eff |= eff
		if wide {
			pe.Wide = true
			return
		}
		// DirectSize == 0 marks "no direct access recorded yet" (class
		// sizes are all positive).
		if pe.DirectSize == 0 {
			pe.DirectCls = cls
		} else if pe.DirectCls != cls {
			pe.DirectCls = ir.Void
		}
		if size > pe.DirectSize {
			pe.DirectSize = size
		}
	case originGlobal:
		sb.out.addGlobal(o.global, eff)
	default:
		sb.out.Unknown |= eff
	}
}

// call merges a callee's summary through the call's actual arguments.
func (sb *summaryBuilder) call(in *ir.Instr) {
	cs := sb.sums.ForCall(in)
	if cs == nil {
		sb.out.Unknown = ModRefEffect
		return
	}
	sb.out.Unknown |= cs.Unknown
	for _, ge := range cs.Globals {
		sb.out.addGlobal(ge.Global, ge.Eff)
	}
	for i, pe := range cs.Params {
		if pe.Eff == 0 {
			continue
		}
		if i >= len(in.Args) {
			sb.out.Unknown |= pe.Eff
			continue
		}
		o := sb.originOf(in.Args[i])
		sb.record(o, pe.Eff, pe.DirectSize, pe.DirectCls, pe.Wide || !o.plain)
	}
}

// exportPi lifts entry-block π facts over plain parameter pointers into
// the summary, including facts a direct entry-block callee exports over
// arguments that are themselves plain parameters (transitive
// propagation; monotone, so safe under the SCC fixpoint).
func (sb *summaryBuilder) exportPi() {
	entry := sb.fn.Entry()
	if entry == nil {
		return
	}
	paramOf := func(v ir.Value) (int, bool) {
		o := sb.originOf(v)
		return o.param, o.kind == originParam && o.plain
	}
	for _, in := range entry.Instrs {
		switch in.Op {
		case ir.OpMustNotAlias:
			if len(in.Args) != 2 {
				continue
			}
			i, iok := paramOf(in.Args[0])
			j, jok := paramOf(in.Args[1])
			if iok && jok {
				sb.out.addPi(i, j, in.Meta)
			}
		case ir.OpCall:
			cs := sb.sums.ForCall(in)
			if cs == nil {
				continue
			}
			for _, p := range cs.PiPairs {
				if p.I >= len(in.Args) || p.J >= len(in.Args) {
					continue
				}
				i, iok := paramOf(in.Args[p.I])
				j, jok := paramOf(in.Args[p.J])
				if iok && jok {
					sb.out.addPi(i, j, p.Meta)
				}
			}
		}
	}
}
