package aa

import (
	"testing"

	"repro/internal/ir"
)

// buildFn creates a small function with two allocas, two GEP chains off a
// parameter, and a mustnotalias intrinsic, for exercising the analyses.
func buildFn() (fn *ir.Func, allocaA, allocaB *ir.Instr, p *ir.Param,
	gep0, gep8, gepVar *ir.Instr, fact *ir.Instr) {

	fn = &ir.Func{Name: "t", Ret: ir.Void}
	p = &ir.Param{Name: "p", Cls: ir.Ptr, Idx: 0}
	fn.Params = []*ir.Param{p}
	b := fn.NewBlock("entry")
	allocaA = b.Append(&ir.Instr{Op: ir.OpAlloca, Cls: ir.Ptr, Name: "a", AllocSz: 8})
	allocaB = b.Append(&ir.Instr{Op: ir.OpAlloca, Cls: ir.Ptr, Name: "b", AllocSz: 8})
	gep0 = b.Append(&ir.Instr{Op: ir.OpGEP, Cls: ir.Ptr,
		Args: []ir.Value{p, ir.ConstInt(ir.I64, 0)}, Scale: 8})
	gep8 = b.Append(&ir.Instr{Op: ir.OpGEP, Cls: ir.Ptr,
		Args: []ir.Value{p, ir.ConstInt(ir.I64, 1)}, Scale: 8})
	idx := b.Append(&ir.Instr{Op: ir.OpLoad, Cls: ir.I64, Args: []ir.Value{allocaA}})
	gepVar = b.Append(&ir.Instr{Op: ir.OpGEP, Cls: ir.Ptr,
		Args: []ir.Value{p, idx}, Scale: 8})
	fact = b.Append(&ir.Instr{Op: ir.OpMustNotAlias, Cls: ir.Void,
		Args: []ir.Value{gep0, gepVar}})
	b.Append(&ir.Instr{Op: ir.OpRet, Cls: ir.Void})
	return
}

func loc(v ir.Value, size int, cls ir.Class) Location {
	return Location{Ptr: v, Size: size, Cls: cls}
}

func TestBasicAADistinctAllocas(t *testing.T) {
	fn, a, b, _, _, _, _, _ := buildFn()
	ba := NewBasicAA(fn)
	if r := ba.Alias(loc(a, 8, ir.I64), loc(b, 8, ir.I64)); r != NoAlias {
		t.Errorf("distinct allocas: %v", r)
	}
}

func TestBasicAASameBaseConstOffsets(t *testing.T) {
	fn, _, _, _, gep0, gep8, _, _ := buildFn()
	ba := NewBasicAA(fn)
	if r := ba.Alias(loc(gep0, 8, ir.F64), loc(gep8, 8, ir.F64)); r != NoAlias {
		t.Errorf("p[0] vs p[1]: %v", r)
	}
	if r := ba.Alias(loc(gep0, 8, ir.F64), loc(gep0, 8, ir.F64)); r != MustAlias {
		t.Errorf("p[0] vs p[0]: %v", r)
	}
	// Overlapping: 8-byte access at 0 vs 4-byte access at 4.
	gp := gep0.Block()
	gep4 := gp.Append(&ir.Instr{Op: ir.OpGEP, Cls: ir.Ptr,
		Args: []ir.Value{fn.Params[0], ir.ConstInt(ir.I64, 4)}, Scale: 1})
	if r := ba.Alias(loc(gep0, 8, ir.F64), loc(gep4, 4, ir.I32)); r != PartialAlias {
		t.Errorf("overlap: %v", r)
	}
}

func TestBasicAAVarIndexSameScale(t *testing.T) {
	fn, _, _, p, _, _, gepVar, _ := buildFn()
	ba := NewBasicAA(fn)
	// Same var index, different const offsets a[i].x vs a[i].y style:
	b := fn.Entry()
	gepVarOff := b.Append(&ir.Instr{Op: ir.OpGEP, Cls: ir.Ptr,
		Args: []ir.Value{p, gepVar.Args[1]}, Scale: 8, Off: 4})
	_ = gepVarOff
	if r := ba.Alias(loc(gepVar, 4, ir.I32), loc(gepVarOff, 4, ir.I32)); r != NoAlias {
		t.Errorf("a[i]+0 (4B) vs a[i]+4 (4B): %v", r)
	}
}

func TestBasicAANonEscapingAlloca(t *testing.T) {
	fn, a, _, _, gep0, _, _, _ := buildFn()
	ba := NewBasicAA(fn)
	// a's address never escapes: cannot alias a pointer-derived access.
	if r := ba.Alias(loc(a, 8, ir.I64), loc(gep0, 8, ir.F64)); r != NoAlias {
		t.Errorf("non-escaping alloca vs param GEP: %v", r)
	}
}

func TestBasicAAEscapedAlloca(t *testing.T) {
	fn, a, _, _, gep0, _, _, _ := buildFn()
	// Escape a: pass it to a call.
	fn.Entry().Append(&ir.Instr{Op: ir.OpCall, Cls: ir.Void, Callee: "sink",
		Args: []ir.Value{a}})
	ba := NewBasicAA(fn)
	if r := ba.Alias(loc(a, 8, ir.I64), loc(gep0, 8, ir.F64)); r != MayAlias {
		t.Errorf("escaped alloca must be MayAlias vs unknown pointers: %v", r)
	}
}

func TestBasicAANonNegativeIndexRule(t *testing.T) {
	// pos at [0,1) vs history[x & 0xFF] at [2, ...): the xz-delta case.
	fn := &ir.Func{Name: "t2", Ret: ir.Void}
	p := &ir.Param{Name: "coder", Cls: ir.Ptr, Idx: 0}
	fn.Params = []*ir.Param{p}
	b := fn.NewBlock("entry")
	pos := b.Append(&ir.Instr{Op: ir.OpGEP, Cls: ir.Ptr,
		Args: []ir.Value{p, ir.ConstInt(ir.I64, 0)}, Scale: 1, Off: 0})
	raw := b.Append(&ir.Instr{Op: ir.OpLoad, Cls: ir.I64, Args: []ir.Value{pos}})
	masked := b.Append(&ir.Instr{Op: ir.OpAnd, Cls: ir.I64,
		Args: []ir.Value{raw, ir.ConstInt(ir.I64, 255)}})
	hist := b.Append(&ir.Instr{Op: ir.OpGEP, Cls: ir.Ptr,
		Args: []ir.Value{p, masked}, Scale: 1, Off: 2})
	b.Append(&ir.Instr{Op: ir.OpRet, Cls: ir.Void})
	ba := NewBasicAA(fn)
	if r := ba.Alias(loc(pos, 1, ir.I8), loc(hist, 1, ir.I8)); r != NoAlias {
		t.Errorf("non-negative-index field rule: %v", r)
	}
	// Without provable non-negativity (raw index) it stays MayAlias.
	hist2 := b.Append(&ir.Instr{Op: ir.OpGEP, Cls: ir.Ptr,
		Args: []ir.Value{p, raw}, Scale: 1, Off: 2})
	if r := ba.Alias(loc(pos, 1, ir.I8), loc(hist2, 1, ir.I8)); r != MayAlias {
		t.Errorf("unbounded index must stay MayAlias: %v", r)
	}
}

func TestTBAA(t *testing.T) {
	tb := NewTBAA()
	cases := []struct {
		a, b ir.Class
		want Result
	}{
		{ir.F64, ir.I32, NoAlias},
		{ir.F64, ir.F64, MayAlias},
		{ir.I8, ir.F64, MayAlias}, // char aliases everything
		{ir.I32, ir.I64, NoAlias},
		{ir.Ptr, ir.I64, MayAlias},
		{ir.Void, ir.F64, MayAlias}, // unknown class
	}
	for _, c := range cases {
		got := tb.Alias(Location{Cls: c.a, Size: c.a.Size()}, Location{Cls: c.b, Size: c.b.Size()})
		if got != c.want {
			t.Errorf("tbaa(%s, %s) = %v want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestUnseqAAExactAndSymmetric(t *testing.T) {
	fn, _, _, _, gep0, gep8, gepVar, _ := buildFn()
	u := NewUnseqAA(fn)
	if u.NumFacts() != 1 {
		t.Fatalf("facts: %d", u.NumFacts())
	}
	if r := u.Alias(loc(gep0, 8, ir.F64), loc(gepVar, 8, ir.F64)); r != NoAlias {
		t.Errorf("registered pair: %v", r)
	}
	if r := u.Alias(loc(gepVar, 8, ir.F64), loc(gep0, 8, ir.F64)); r != NoAlias {
		t.Errorf("pair must be symmetric: %v", r)
	}
	if r := u.Alias(loc(gep8, 8, ir.F64), loc(gepVar, 8, ir.F64)); r != MayAlias {
		t.Errorf("unregistered pair must stay MayAlias: %v", r)
	}
}

func TestUnseqAAResolvesThroughConverts(t *testing.T) {
	fn, _, _, _, gep0, _, gepVar, _ := buildFn()
	b := fn.Entry()
	cp := b.Append(&ir.Instr{Op: ir.OpConvert, Cls: ir.Ptr, Args: []ir.Value{gep0}})
	u := NewUnseqAA(fn)
	if r := u.Alias(loc(cp, 8, ir.F64), loc(gepVar, 8, ir.F64)); r != NoAlias {
		t.Errorf("copy of a registered pointer must match: %v", r)
	}
}

func TestManagerChainAndStats(t *testing.T) {
	fn, a, bAl, _, gep0, _, gepVar, _ := buildFn()
	m := NewManager(fn, true)
	// basic-aa resolves this one: no unseq credit.
	if r := m.Alias(loc(a, 8, ir.I64), loc(bAl, 8, ir.I64)); r != NoAlias {
		t.Fatalf("chain: %v", r)
	}
	if m.Stats.UnseqNoAlias != 0 {
		t.Errorf("basic-aa answers must not credit unseq-aa")
	}
	// Only unseq-aa resolves this one.
	if r := m.Alias(loc(gep0, 8, ir.F64), loc(gepVar, 8, ir.F64)); r != NoAlias {
		t.Fatalf("chain unseq: %v", r)
	}
	if m.Stats.UnseqNoAlias != 1 {
		t.Errorf("UnseqNoAlias = %d want 1", m.Stats.UnseqNoAlias)
	}
	if m.Stats.Queries != 2 || m.Stats.NoAlias != 2 {
		t.Errorf("stats: %+v", m.Stats)
	}
	// Without unseq-aa in the chain the same query is MayAlias.
	m2 := NewManager(fn, false)
	if r := m2.Alias(loc(gep0, 8, ir.F64), loc(gepVar, 8, ir.F64)); r != MayAlias {
		t.Errorf("baseline chain should not know the fact: %v", r)
	}
}

func TestManagerRefreshDropsStaleFacts(t *testing.T) {
	fn, _, _, _, gep0, _, gepVar, fact := buildFn()
	m := NewManager(fn, true)
	if m.Unseq().NumFacts() != 1 {
		t.Fatal("setup")
	}
	// Remove the intrinsic and refresh: fact must disappear.
	b := fn.Entry()
	var out []*ir.Instr
	for _, in := range b.Instrs {
		if in != fact {
			out = append(out, in)
		}
	}
	b.Instrs = out
	m.Refresh(fn)
	if m.Unseq().NumFacts() != 0 {
		t.Errorf("stale fact survived refresh")
	}
	if r := m.Alias(loc(gep0, 8, ir.F64), loc(gepVar, 8, ir.F64)); r != MayAlias {
		t.Errorf("after refresh: %v", r)
	}
}

func TestDecompose(t *testing.T) {
	fn, _, _, p, _, _, _, _ := buildFn()
	b := fn.Entry()
	inner := b.Append(&ir.Instr{Op: ir.OpGEP, Cls: ir.Ptr,
		Args: []ir.Value{p, ir.ConstInt(ir.I64, 2)}, Scale: 16, Off: 4})
	outer := b.Append(&ir.Instr{Op: ir.OpGEP, Cls: ir.Ptr,
		Args: []ir.Value{inner, ir.ConstInt(ir.I64, 3)}, Scale: 8, Off: 1})
	d := decompose(outer)
	if d.base != ir.Value(p) {
		t.Errorf("base: %v", d.base)
	}
	if d.constOff != 2*16+4+3*8+1 {
		t.Errorf("constOff: %d", d.constOff)
	}
	if d.hasVarIdx {
		t.Error("no variable index expected")
	}
}
