int main(void) {
  unsigned a = 1;
  unsigned b = 0;
  b = b - 2;
  if (b > a) return 1;
  return 0;
}
