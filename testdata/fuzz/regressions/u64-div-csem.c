int main(void) {
  unsigned long a = 0;
  a = a - 9;
  a = a / 5;
  return a > 1000;
}
