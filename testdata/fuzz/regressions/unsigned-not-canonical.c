/* Found by ooefuzz (seed 31352): irgen lowered ~ and unary - without
 * the Unsigned flag, so the result of ~u on a 32-bit unsigned stayed
 * sign-extended (-1) in the register instead of the canonical
 * zero-extended 0xFFFFFFFF, and everything downstream of the
 * non-canonical register (here the *= conversion to long) computed
 * with the wrong value. */
union U { int i; unsigned u; };
union U gu;
int main(void) {
  long t1 = 11;
  t1 *= (~gu.u);
  long h = t1;
  unsigned n = 1;
  h = h * 31 + (long)(-n);
  return (int)(h % 100003);
}
