unsigned g;
int main(void) {
  --g;
  long h = g;
  return (int)(h % 100003);
}
