unsigned gu;
int f(void) { return -18; }
int main(void) {
  long t = 7;
  t += (gu ? 1u : f());
  return (int)(t % 100003);
}
