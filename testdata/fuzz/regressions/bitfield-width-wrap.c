/* Reduced from fuzz seeds 139/274/438: a store into a narrow signed
 * bitfield must wrap to the field width. 30 does not fit in int:5, so
 * gs.b reads back as -2; the reference semantics used to keep the full
 * 30 while every compiled leg (correctly) wrapped. */
struct S { int b : 5; int c : 7; };
struct S gs;
int main(void) {
  gs.b = 30;
  gs.c = gs.b + 1;
  if (gs.b != -2) return 1;
  if (gs.c != -1) return 2;
  return 0;
}
