struct S { int a; int b : 5; int c : 7; };
struct S gs;
int main(void) {
  gs.b ^= 1;
  return gs.c;
}
