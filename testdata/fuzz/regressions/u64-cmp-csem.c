int main(void) {
  unsigned long a = 0;
  a = a - 1;
  if (a > 0) return 1;
  return 0;
}
