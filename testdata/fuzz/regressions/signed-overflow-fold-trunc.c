int main(void) {
  int x = 2147483647;
  x = x + 1;
  if (x < 0) return 1;
  return 0;
}
