union U { int i; unsigned u; };
union U gu;
int main(void) {
  --gu.u;
  long h = gu.i;
  return (int)(h % 100003);
}
